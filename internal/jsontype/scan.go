package jsontype

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
)

// typeScanner derives structural types directly from raw JSON bytes. The
// encoding/json token API allocates per token (boxed tokens, one string
// per key and value, one json.Number per number); since discovery only
// needs the *shape*, this scanner walks the bytes itself and allocates
// only for structure it has never seen: object keys are cached in a
// per-scanner string table, child slices live on reusable stacks, and the
// interner copies a slice only when the type is genuinely new. In steady
// state — every distinct type already interned — scanning a record
// performs no heap allocation at all.
//
// The scanner validates structure (delimiters, literals, string framing)
// but is lenient inside numbers: any run of number characters is accepted
// where encoding/json would reject malformed exponents. Discovery treats
// all numbers as ℝ, so the distinction cannot change a schema.
type typeScanner struct {
	data []byte
	pos  int

	keys   map[string]string // raw key bytes -> canonical decoded string
	fields []Field           // shared stack for in-flight object fields
	elems  []*Type           // shared stack for in-flight array elements
}

var scannerPool = sync.Pool{
	New: func() any { return &typeScanner{keys: map[string]string{}} },
}

// scanOne scans a single JSON value; trailing non-space content is an
// error.
//
//jx:hotpath
func scanOne(data []byte) (*Type, error) {
	s := scannerPool.Get().(*typeScanner)
	defer scannerPool.Put(s)
	s.reset(data)
	t, err := s.value()
	if err != nil {
		return nil, err
	}
	s.skipSpace()
	if s.pos < len(s.data) {
		return nil, s.errf("trailing content after JSON value")
	}
	return t, nil
}

// scanAll scans a stream of whitespace-separated JSON values, appending
// their types to out. On error the types scanned so far are returned with
// it.
//
//jx:hotpath
func scanAll(data []byte, out []*Type) ([]*Type, error) {
	s := scannerPool.Get().(*typeScanner)
	defer scannerPool.Put(s)
	s.reset(data)
	for {
		s.skipSpace()
		if s.pos >= len(s.data) {
			return out, nil
		}
		t, err := s.value()
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

//jx:hotpath
func (s *typeScanner) reset(data []byte) {
	s.data, s.pos = data, 0
	s.fields = s.fields[:0]
	s.elems = s.elems[:0]
}

//jx:hotpath
func (s *typeScanner) skipSpace() {
	for s.pos < len(s.data) {
		switch s.data[s.pos] {
		case ' ', '\t', '\n', '\r':
			s.pos++
		default:
			return
		}
	}
}

// errf builds scan errors; hot-path functions call it only on malformed
// input, so the fmt allocation is off the steady state by construction.
//
//jx:coldpath error construction runs once per malformed document, not per record
func (s *typeScanner) errf(msg string) error {
	return fmt.Errorf("jsontype: %s at offset %d", msg, s.pos)
}

//jx:hotpath
func (s *typeScanner) value() (*Type, error) {
	s.skipSpace()
	if s.pos >= len(s.data) {
		return nil, s.errf("unexpected end of JSON")
	}
	switch c := s.data[s.pos]; {
	case c == '{':
		return s.object()
	case c == '[':
		return s.array()
	case c == '"':
		if err := s.skipString(); err != nil {
			return nil, err
		}
		return String, nil
	case c == 't':
		return s.literal("true", Bool)
	case c == 'f':
		return s.literal("false", Bool)
	case c == 'n':
		return s.literal("null", Null)
	case c == '-' || (c >= '0' && c <= '9'):
		return s.number()
	}
	return nil, s.errf("unexpected character")
}

//jx:hotpath
func (s *typeScanner) literal(lit string, t *Type) (*Type, error) {
	// The string(...) conversion is a comparison operand; the compiler
	// elides the copy.
	if len(s.data)-s.pos < len(lit) || string(s.data[s.pos:s.pos+len(lit)]) != lit {
		return nil, s.errf("invalid literal")
	}
	s.pos += len(lit)
	return t, nil
}

//jx:hotpath
func (s *typeScanner) number() (*Type, error) {
	for s.pos < len(s.data) {
		c := s.data[s.pos]
		if (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.' || c == 'e' || c == 'E' {
			s.pos++
			continue
		}
		break
	}
	return Number, nil
}

// skipString consumes a string value without decoding it; only its kind
// matters.
//
//jx:hotpath
func (s *typeScanner) skipString() error {
	s.pos++ // opening quote
	for s.pos < len(s.data) {
		switch s.data[s.pos] {
		case '\\':
			s.pos += 2
		case '"':
			s.pos++
			return nil
		default:
			s.pos++
		}
	}
	return s.errf("unterminated string")
}

// key consumes an object key and returns its canonical string: each
// distinct raw byte sequence is decoded once and cached, so repeated
// records share key strings instead of allocating one per occurrence.
//
//jx:hotpath
func (s *typeScanner) key() (string, error) {
	start := s.pos + 1
	escaped := false
	s.pos++
	for s.pos < len(s.data) {
		switch s.data[s.pos] {
		case '\\':
			escaped = true
			s.pos += 2
		case '"':
			raw := s.data[start:s.pos]
			quoted := s.data[start-1 : s.pos+1]
			s.pos++
			if k, ok := s.keys[string(raw)]; ok { // no-alloc lookup
				return k, nil
			}
			return s.internKey(raw, quoted, escaped)
		default:
			s.pos++
		}
	}
	return "", s.errf("unterminated string")
}

// internKey decodes a key seen for the first time and caches it under its
// raw bytes. It runs once per distinct raw key byte sequence — cold by
// construction — so it may allocate (the cache entry) and lean on
// encoding/json for escape decoding.
//
//jx:coldpath runs once per distinct raw key; steady state hits the keys cache
func (s *typeScanner) internKey(raw, quoted []byte, escaped bool) (string, error) {
	var k string
	if escaped {
		if err := json.Unmarshal(quoted, &k); err != nil {
			return "", s.errf("invalid object key")
		}
	} else {
		k = string(raw)
	}
	s.keys[string(raw)] = k
	return k, nil
}

//jx:hotpath
func (s *typeScanner) object() (*Type, error) {
	s.pos++ // '{'
	mark := len(s.fields)
	s.skipSpace()
	if s.pos >= len(s.data) {
		return nil, s.errf("unterminated object")
	}
	if s.data[s.pos] == '}' {
		s.pos++
		return internObjectScratch(nil), nil
	}
	for {
		s.skipSpace()
		if s.pos >= len(s.data) || s.data[s.pos] != '"' {
			return nil, s.errf("expected object key")
		}
		key, err := s.key()
		if err != nil {
			return nil, err
		}
		s.skipSpace()
		if s.pos >= len(s.data) || s.data[s.pos] != ':' {
			return nil, s.errf("expected ':' after object key")
		}
		s.pos++
		v, err := s.value()
		if err != nil {
			return nil, err
		}
		s.fields = append(s.fields, Field{Key: key, Type: v})
		s.skipSpace()
		if s.pos >= len(s.data) {
			return nil, s.errf("unterminated object")
		}
		if c := s.data[s.pos]; c == ',' {
			s.pos++
			continue
		} else if c == '}' {
			s.pos++
			break
		}
		return nil, s.errf("expected ',' or '}' in object")
	}
	seg := s.fields[mark:]
	sortFieldsStable(seg)
	// Duplicate keys: last occurrence wins, mirroring encoding/json. The
	// stable sort keeps equal keys in source order, so collapsing runs
	// toward their last element implements that.
	w := 0
	for i := 0; i < len(seg); i++ {
		if w > 0 && seg[w-1].Key == seg[i].Key {
			seg[w-1].Type = seg[i].Type
		} else {
			seg[w] = seg[i]
			w++
		}
	}
	t := internObjectScratch(seg[:w])
	s.fields = s.fields[:mark]
	return t, nil
}

//jx:hotpath
func (s *typeScanner) array() (*Type, error) {
	s.pos++ // '['
	mark := len(s.elems)
	s.skipSpace()
	if s.pos >= len(s.data) {
		return nil, s.errf("unterminated array")
	}
	if s.data[s.pos] == ']' {
		s.pos++
		return internArrayScratch(nil), nil
	}
	for {
		v, err := s.value()
		if err != nil {
			return nil, err
		}
		s.elems = append(s.elems, v)
		s.skipSpace()
		if s.pos >= len(s.data) {
			return nil, s.errf("unterminated array")
		}
		if c := s.data[s.pos]; c == ',' {
			s.pos++
			continue
		} else if c == ']' {
			s.pos++
			break
		}
		return nil, s.errf("expected ',' or ']' in array")
	}
	t := internArrayScratch(s.elems[mark:])
	s.elems = s.elems[:mark]
	return t, nil
}

// sortFieldsStable sorts fields by key, stably. Small segments — the
// overwhelming majority of JSON objects — use an allocation-free insertion
// sort; wide objects fall back to sortFieldsWide.
//
//jx:hotpath
func sortFieldsStable(fields []Field) {
	if len(fields) <= 24 {
		for i := 1; i < len(fields); i++ {
			f := fields[i]
			j := i - 1
			for j >= 0 && fields[j].Key > f.Key {
				fields[j+1] = fields[j]
				j--
			}
			fields[j+1] = f
		}
		return
	}
	sortFieldsWide(fields)
}

// sortFieldsWide handles the >24-field case, where sort.SliceStable's
// boxing of the slice is dwarfed by the comparisons anyway.
//
//jx:coldpath objects wider than 24 fields are rare; the sort dominates the boxing
func sortFieldsWide(fields []Field) {
	sort.SliceStable(fields, func(i, j int) bool { return fields[i].Key < fields[j].Key })
}
