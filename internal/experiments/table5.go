package experiments

import (
	"time"

	"jxplain/internal/dataset"
	"jxplain/internal/stats"
)

// Table5Cell is the mean wall-clock extraction time in milliseconds.
type Table5Cell struct {
	Mean, Std float64
}

// Table5Result is the runtime experiment (paper Table 5): K-reduce (as a
// parallel fold) vs. Bimax-Merge (the multi-pass pipeline) across training
// fractions. The paper expects JXPLAIN to be a small factor slower — the
// price of the extra global passes — with the worst ratios on deeply
// nested data.
type Table5Result struct {
	Options   Options
	Datasets  []string
	Fractions []float64
	// Cells[dataset][fraction][algorithm]; only KReduce and BimaxMerge.
	Cells map[string]map[float64]map[Algorithm]Table5Cell
}

// RunTable5 measures extraction wall-clock time.
func RunTable5(o Options) (*Table5Result, error) {
	o = o.Defaults()
	gens, err := o.generators()
	if err != nil {
		return nil, err
	}
	algs := []Algorithm{KReduce, BimaxMerge}
	res := &Table5Result{
		Options:   o,
		Fractions: o.Fractions,
		Cells:     map[string]map[float64]map[Algorithm]Table5Cell{},
	}
	for _, g := range gens {
		res.Datasets = append(res.Datasets, g.Name)
		res.Cells[g.Name] = map[float64]map[Algorithm]Table5Cell{}
		records := g.Generate(o.scaledN(g), o.Seed)
		for _, frac := range o.Fractions {
			sums := map[Algorithm]*stats.Summary{}
			for _, alg := range algs {
				sums[alg] = &stats.Summary{}
			}
			for trial := 0; trial < o.Trials; trial++ {
				train, _ := split(records, frac, o.Seed+int64(1000+trial))
				trainTypes := dataset.Types(train)
				for _, alg := range algs {
					start := time.Now()
					_ = Discover(alg, trainTypes)
					sums[alg].Add(float64(time.Since(start).Microseconds()) / 1000.0)
				}
			}
			cell := map[Algorithm]Table5Cell{}
			for _, alg := range algs {
				cell[alg] = Table5Cell{Mean: sums[alg].Mean(), Std: sums[alg].Std()}
			}
			res.Cells[g.Name][frac] = cell
		}
	}
	return res, nil
}

func (r *Table5Result) table() *table {
	t := &table{
		title: "Table 5: Extraction runtime (ms) by algorithm and training fraction",
		headers: []string{"dataset", "train",
			"K-reduce ms", "Bimax-Merge ms", "slowdown"},
	}
	for _, ds := range r.Datasets {
		for _, frac := range r.Fractions {
			cell := r.Cells[ds][frac]
			k := cell[KReduce].Mean
			m := cell[BimaxMerge].Mean
			slow := 0.0
			if k > 0 {
				slow = m / k
			}
			t.addRow(ds, pct(frac), f2(k), f2(m), f2(slow)+"x")
		}
	}
	return t
}

// Render draws the ASCII table.
func (r *Table5Result) Render() string { return r.table().Render() }

// CSV renders comma-separated values.
func (r *Table5Result) CSV() string { return r.table().CSV() }
