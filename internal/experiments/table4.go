package experiments

import (
	"strconv"

	"jxplain/internal/core"
	"jxplain/internal/dataset"
	"jxplain/internal/jsontype"
	"jxplain/internal/metrics"
	"jxplain/internal/schema"
	"jxplain/internal/stats"
)

func itoa(i int) string { return strconv.Itoa(i) }

// Table4Row reports the number of root-level entities each approach
// predicts for one dataset at 90% training: L-reduce's count is the number
// of distinct types (its "entities"), the Bimax variants count root tuple
// clusters. The gap between Bimax-Naive and Bimax-Merge is the value of
// the GreedyMerge step (claim iv).
type Table4Row struct {
	Dataset                       string
	LReduceMean, LReduceStd       float64
	BimaxNaiveMean, BimaxNaiveStd float64
	BimaxMergeMean, BimaxMergeStd float64
}

// Table4Result is the conciseness experiment (paper Table 4).
type Table4Result struct {
	Options Options
	Rows    []Table4Row
}

// RunTable4 counts predicted entities with 90% training data. As in the
// paper, collection detection is disabled for the Pharmaceutical dataset
// (its single collection-like object otherwise hides the optional-field
// stress test) and only root-level entities are counted.
func RunTable4(o Options) (*Table4Result, error) {
	o = o.Defaults()
	gens, err := o.generators()
	if err != nil {
		return nil, err
	}
	res := &Table4Result{Options: o}
	for _, g := range gens {
		var lSum, naiveSum, mergeSum stats.Summary
		for trial := 0; trial < o.Trials; trial++ {
			records := g.Generate(o.scaledN(g), o.Seed+int64(trial))
			train, _ := split(records, 0.9, o.Seed+int64(1000+trial))
			trainTypes := dataset.Types(train)

			naiveCfg := core.BimaxNaiveConfig()
			mergeCfg := core.Default()
			if g.Name == "pharma" {
				naiveCfg.DetectObjectCollections = false
				mergeCfg.DetectObjectCollections = false
			}

			lSum.Add(float64(distinctTypes(trainTypes)))
			naiveSum.Add(float64(rootEntityCount(core.PipelineTypes(trainTypes, naiveCfg))))
			mergeSum.Add(float64(rootEntityCount(core.PipelineTypes(trainTypes, mergeCfg))))
		}
		res.Rows = append(res.Rows, Table4Row{
			Dataset:     g.Name,
			LReduceMean: lSum.Mean(), LReduceStd: lSum.Std(),
			BimaxNaiveMean: naiveSum.Mean(), BimaxNaiveStd: naiveSum.Std(),
			BimaxMergeMean: mergeSum.Mean(), BimaxMergeStd: mergeSum.Std(),
		})
	}
	return res, nil
}

func distinctTypes(types []*jsontype.Type) int {
	bag := &jsontype.Bag{}
	for _, t := range types {
		bag.Add(t)
	}
	return bag.Distinct()
}

func rootEntityCount(s schema.Schema) int {
	entities, _ := metrics.RootEntitySchemas(schema.Simplify(s))
	return len(entities)
}

func (r *Table4Result) table() *table {
	t := &table{
		title: "Table 4: Entity predictions with 90% training data " +
			"(pharma runs with collection detection disabled)",
		headers: []string{"dataset", "L-red mean", "L-red std",
			"BxN mean", "BxN std", "BxM mean", "BxM std"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Dataset,
			f1(row.LReduceMean), f1(row.LReduceStd),
			f1(row.BimaxNaiveMean), f1(row.BimaxNaiveStd),
			f1(row.BimaxMergeMean), f1(row.BimaxMergeStd))
	}
	return t
}

// Render draws the ASCII table.
func (r *Table4Result) Render() string { return r.table().Render() }

// CSV renders comma-separated values.
func (r *Table4Result) CSV() string { return r.table().CSV() }
