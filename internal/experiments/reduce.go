package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"jxplain/internal/core"
	"jxplain/internal/dataset"
	"jxplain/internal/dist"
	"jxplain/internal/ingest"
	"jxplain/internal/schema"
)

// reduceIters matches the other wall-time benchmarks: each measurement is
// the mean of this many reduce executions.
const reduceIters = 3

// reduceShardGrid is the map-output width axis: how many sketch files the
// reducer has to fold. The high end is where a sequential reduce becomes
// the Amdahl bottleneck of a sharded run.
var reduceShardGrid = []int{1, 2, 4, 8, 16, 32}

// reduceWorkerGrid is the -reduce-workers axis of the tree reduce.
var reduceWorkerGrid = []int{1, 2, 4, 8}

// ReduceRow is one (dataset, shard count, reduce workers) cell: the input
// is mapped into `Shards` serialized sketches once, and the reduce —
// core.ReduceSketches' balanced adjacent-pair tree — is measured at
// `Workers` concurrent mergers.
type ReduceRow struct {
	Dataset string `json:"dataset"`
	Records int    `json:"records"`
	Shards  int    `json:"shards"`
	Workers int    `json:"workers"`

	// MapNs is the map phase wall time (all shards folded and marshaled
	// concurrently), measured once per shard count for context.
	MapNs float64 `json:"map_ns"`
	// ReduceNs is the wall time to tree-merge all sketches into one
	// accumulator; synthesis (passes ②/③) is excluded since it is
	// constant in both axes.
	ReduceNs float64 `json:"reduce_ns"`
	// ReduceAllocs is the heap allocation count per reduce op.
	ReduceAllocs float64 `json:"reduce_allocs"`

	// MaterializeNs/MaterializeAllocs time the pre-merge-into baseline —
	// UnmarshalAccumulator then Merge, file by file — on the sequential
	// rows only (Workers == 1), where the two are directly comparable.
	MaterializeNs     float64 `json:"materialize_ns,omitempty"`
	MaterializeAllocs float64 `json:"materialize_allocs,omitempty"`

	// Speedup is the same-shard-count sequential ReduceNs over this
	// ReduceNs.
	Speedup float64 `json:"speedup,omitempty"`

	// ByteIdentical confirms the tree-reduced schema equals the
	// single-process schema byte for byte. A false value never reaches the
	// output: divergence aborts the run.
	ByteIdentical bool `json:"byte_identical"`
}

// ReduceResult is the reduce-scaling benchmark (BENCH_reduce.json).
type ReduceResult struct {
	Note string      `json:"note"`
	Rows []ReduceRow `json:"rows"`
}

// RunReduceBench measures the parallel tree reduce over the shard ×
// worker grid, verifying byte-equivalence against single-process
// discovery on every cell before timing it.
func RunReduceBench(o Options) (*ReduceResult, error) {
	o = o.Defaults()
	gens, err := o.generators()
	if err != nil {
		return nil, err
	}
	res := &ReduceResult{
		Note: fmt.Sprintf("parallel tree reduce over serialized sketches: shards is the map-output width, workers the "+
			"-reduce-workers axis; reduce_ns covers sketch decode+merge only; materialize_* is the "+
			"unmarshal-then-merge baseline on the sequential rows; n=DefaultN, seed=%d, %d iters, GOMAXPROCS=%d — "+
			"byte_identical is verified before any cell is timed",
			o.Seed, reduceIters, runtime.GOMAXPROCS(0)),
	}
	for _, g := range gens {
		rows, err := reduceDataset(g, o)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

func reduceDataset(g *dataset.Generator, o Options) ([]ReduceRow, error) {
	records := g.Generate(o.scaledN(g), o.Seed)
	var input bytes.Buffer
	for _, rec := range records {
		data, err := json.Marshal(rec.Value)
		if err != nil {
			return nil, fmt.Errorf("reduce: marshal %s: %w", g.Name, err)
		}
		input.Write(data)
		input.WriteByte('\n')
	}
	lines := bytes.SplitAfter(input.Bytes(), []byte("\n"))
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}

	cfg := core.Default()
	single := core.NewAccumulator(cfg)
	if _, err := ingest.Fold(context.Background(), bytes.NewReader(input.Bytes()),
		ingest.Options{JSONL: true}, single); err != nil {
		return nil, fmt.Errorf("reduce: %s: %w", g.Name, err)
	}
	want, err := schema.Marshal(schema.Simplify(single.Finish()))
	if err != nil {
		return nil, err
	}

	var rows []ReduceRow
	for _, shards := range reduceShardGrid {
		sketches, mapNs, err := mapSketches(g.Name, lines, shards)
		if err != nil {
			return nil, err
		}
		baseNs := 0.0
		for _, workers := range reduceWorkerGrid {
			row := ReduceRow{Dataset: g.Name, Records: len(records),
				Shards: shards, Workers: workers, MapNs: mapNs}

			// Verify on a warm-up pass so a broken cell fails before it is
			// measured: byte-equivalence is the contract, not a best-effort
			// property, and a divergent cell aborts the whole run rather
			// than recording timings for a wrong answer.
			acc, err := core.ReduceSketches(sketches, cfg, workers)
			if err != nil {
				return nil, fmt.Errorf("reduce: %s shards=%d workers=%d: %w", g.Name, shards, workers, err)
			}
			got, err := schema.Marshal(schema.Simplify(acc.Finish()))
			if err != nil {
				return nil, err
			}
			row.ByteIdentical = bytes.Equal(got, want)
			if !row.ByteIdentical {
				return nil, fmt.Errorf("reduce: %s shards=%d workers=%d: tree-reduced schema diverges from single-process schema",
					g.Name, shards, workers)
			}

			row.ReduceNs, row.ReduceAllocs, err = timedReduce(reduceIters, func() error {
				_, err := core.ReduceSketches(sketches, cfg, workers)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("reduce: %s shards=%d workers=%d: %w", g.Name, shards, workers, err)
			}
			if workers == 1 {
				baseNs = row.ReduceNs
				row.MaterializeNs, row.MaterializeAllocs, err = timedReduce(reduceIters, func() error {
					acc := core.NewAccumulator(cfg)
					for _, data := range sketches {
						other, err := core.UnmarshalAccumulator(data, cfg)
						if err != nil {
							return err
						}
						acc.Merge(other)
					}
					return nil
				})
				if err != nil {
					return nil, fmt.Errorf("reduce: %s shards=%d materialize: %w", g.Name, shards, err)
				}
			}
			if baseNs > 0 && row.ReduceNs > 0 {
				row.Speedup = baseNs / row.ReduceNs
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// mapSketches folds the lines into `shards` contiguous sketches, one
// goroutine per shard (the in-process analogue of cmd/jxshard's map
// worker processes), returning the serialized files and the phase's wall
// time.
func mapSketches(name string, lines [][]byte, shards int) ([][]byte, float64, error) {
	parts := make([][]byte, shards)
	start := 0
	for i := 0; i < shards; i++ {
		end := len(lines) * (i + 1) / shards
		parts[i] = bytes.Join(lines[start:end], nil)
		start = end
	}
	t0 := time.Now()
	sketches := dist.Map(parts, shards, func(part []byte) []byte {
		acc := core.NewAccumulator(core.Default())
		if _, err := ingest.Fold(context.Background(), bytes.NewReader(part),
			ingest.Options{JSONL: true, Workers: 1}, acc); err != nil {
			return nil
		}
		data, err := acc.Marshal()
		if err != nil {
			return nil
		}
		return data
	})
	mapNs := float64(time.Since(t0).Nanoseconds())
	for _, s := range sketches {
		if s == nil {
			return nil, 0, fmt.Errorf("reduce: %s: map fold failed", name)
		}
	}
	return sketches, mapNs, nil
}

// timedReduce runs op iters times and returns the mean wall time and mean
// heap allocation count per op. Mallocs is process-global, so callers keep
// background work out of the measured window.
func timedReduce(iters int, op func() error) (ns, allocs float64, err error) {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		if err := op(); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&m1)
	return float64(elapsed.Nanoseconds()) / float64(iters),
		float64(m1.Mallocs-m0.Mallocs) / float64(iters), nil
}

func (r *ReduceResult) table() *table {
	t := &table{
		title: "Parallel tree reduce over serialized sketches",
		headers: []string{"dataset", "records", "shards", "workers", "map ms",
			"reduce ms", "allocs", "matz ms", "matz allocs", "speedup", "identical"},
	}
	fmtOpt := func(v float64, format string) string {
		if v == 0 {
			return "-"
		}
		return fmt.Sprintf(format, v)
	}
	for _, row := range r.Rows {
		t.addRow(row.Dataset,
			fmt.Sprintf("%d", row.Records),
			fmt.Sprintf("%d", row.Shards),
			fmt.Sprintf("%d", row.Workers),
			fmt.Sprintf("%.2f", row.MapNs/1e6),
			fmt.Sprintf("%.3f", row.ReduceNs/1e6),
			fmt.Sprintf("%.0f", row.ReduceAllocs),
			fmtOpt(row.MaterializeNs/1e6, "%.3f"),
			fmtOpt(row.MaterializeAllocs, "%.0f"),
			fmt.Sprintf("%.2fx", row.Speedup),
			fmt.Sprintf("%v", row.ByteIdentical))
	}
	return t
}

// Render formats the grid as an ASCII table.
func (r *ReduceResult) Render() string { return r.table().Render() }

// CSV formats the grid as CSV.
func (r *ReduceResult) CSV() string { return r.table().CSV() }

// JSON serializes the result for results/BENCH_reduce.json.
func (r *ReduceResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
