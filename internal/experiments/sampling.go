package experiments

import (
	"jxplain/internal/core"
	"jxplain/internal/dataset"
	"jxplain/internal/entropy"
	"jxplain/internal/jsontype"
	"jxplain/internal/metrics"
)

// SampledDetectionRow reports, for one dataset and detection-sample
// fraction, how closely the sampled pass-① decisions track the exact ones
// and the resulting schema's test recall.
type SampledDetectionRow struct {
	Dataset string
	// Sample is the pass-① sampling fraction (1 = exact).
	Sample float64
	// DecisionAgreement is the fraction of exact-detection paths whose
	// tuple/collection call the sampled detection reproduces.
	DecisionAgreement float64
	// Recall is the sampled-detection schema's recall on the 10% test set.
	Recall float64
}

// SampledDetectionResult is the entropy-approximation ablation: §4.2
// observes that "entropy-based collection detection is surprisingly
// robust (even a 1% sample is often almost perfect)".
type SampledDetectionResult struct {
	Options Options
	Rows    []SampledDetectionRow
}

// RunSampledDetection compares exact pass-① decisions against decisions
// computed from 1%, 10% and 50% samples, at 90% training.
func RunSampledDetection(o Options) (*SampledDetectionResult, error) {
	o = o.Defaults()
	gens, err := o.generators()
	if err != nil {
		return nil, err
	}
	fractions := []float64{0.01, 0.10, 0.50, 1.0}
	res := &SampledDetectionResult{Options: o}
	for _, g := range gens {
		records := g.Generate(o.scaledN(g), o.Seed)
		train, test := split(records, 0.9, o.Seed+1000)
		trainTypes := dataset.Types(train)
		testTypes := dataset.Types(test)

		bag := &jsontype.Bag{}
		for _, t := range trainTypes {
			bag.Add(t)
		}
		exact := decisionsByPath(core.CollectPathStats(bag, core.Default()))

		for _, frac := range fractions {
			cfg := core.Default()
			cfg.DetectionSample = frac
			cfg.Seed = o.Seed

			agreement := 1.0
			if frac < 1 {
				// Recompute the sampled decisions the pipeline used.
				sampled := decisionsByPath(core.CollectPathStats(core.SampleBag(bag, frac, o.Seed), cfg))
				matched, total := 0, 0
				for path, d := range exact {
					total++
					if sd, ok := sampled[path]; ok && sd == d {
						matched++
					}
				}
				if total > 0 {
					agreement = float64(matched) / float64(total)
				}
			}
			s := core.PipelineTypes(trainTypes, cfg)
			res.Rows = append(res.Rows, SampledDetectionRow{
				Dataset:           g.Name,
				Sample:            frac,
				DecisionAgreement: agreement,
				Recall:            metrics.Recall(s, testTypes),
			})
		}
	}
	return res, nil
}

// decisionsByPath keys decisions by path+kind.
func decisionsByPath(stats []core.PathStat) map[string]entropy.Decision {
	out := map[string]entropy.Decision{}
	for _, st := range stats {
		out[st.Path+"/"+st.Kind.String()] = st.Decision
	}
	return out
}

func (r *SampledDetectionResult) table() *table {
	t := &table{
		title:   "Ablation: sampled pass-① detection (entropy approximation)",
		headers: []string{"dataset", "sample", "decision agreement", "test recall"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Dataset, pct(row.Sample), f5(row.DecisionAgreement), f5(row.Recall))
	}
	return t
}

// Render draws the ASCII table.
func (r *SampledDetectionResult) Render() string { return r.table().Render() }

// CSV renders comma-separated values.
func (r *SampledDetectionResult) CSV() string { return r.table().CSV() }
