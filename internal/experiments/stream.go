package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"jxplain/internal/core"
	"jxplain/internal/dataset"
	"jxplain/internal/ingest"
	"jxplain/internal/jsontype"
	"jxplain/internal/schema"
	"jxplain/internal/stats"
)

// streamRepeat is how many times the generated stream is replayed back to
// back in the streaming benchmark. Replaying multiplies the record count
// without adding distinct structure — the shape of a multi-GB production
// stream — so it separates the two memory models: the materialized path
// holds one type tree per record and grows with the replay factor, while
// the streaming accumulator holds only distinct structure and stays flat.
const streamRepeat = 5

// StreamRow is the streaming-vs-materialized measurement for one dataset.
type StreamRow struct {
	Dataset       string `json:"dataset"`
	Records       int    `json:"records"`
	DistinctTypes int    `json:"distinct_types"`
	InputBytes    int    `json:"input_bytes"`
	// Materialized: DecodeAll into a type slice, then the batch pipeline.
	MaterializedMillis   float64 `json:"materialized_ms"`
	MaterializedPeakHeap uint64  `json:"materialized_peak_heap_bytes"`
	// Streaming: chunked ingest worker pool into the mergeable-sketch
	// accumulator.
	StreamingMillis   float64 `json:"streaming_ms"`
	StreamingPeakHeap uint64  `json:"streaming_peak_heap_bytes"`
	// PeakHeapRatio is materialized peak / streaming peak (>1 means the
	// streaming path needed less memory).
	PeakHeapRatio float64 `json:"peak_heap_ratio"`
	// ThroughputRatio is streaming records/s over materialized records/s.
	ThroughputRatio float64 `json:"throughput_ratio"`
	// SchemasEqual confirms both paths produced the identical schema.
	SchemasEqual bool `json:"schemas_equal"`
}

// StreamBenchResult compares streaming chunked ingestion against the
// materialize-everything baseline on the synthetic datasets, each stream
// replayed streamRepeat times to simulate large collections of bounded
// distinct structure.
type StreamBenchResult struct {
	Options Options     `json:"options"`
	Repeat  int         `json:"repeat"`
	Workers int         `json:"workers"`
	Rows    []StreamRow `json:"rows"`
}

// RunStreamBench measures both ingestion paths over the configured
// datasets.
func RunStreamBench(o Options) (*StreamBenchResult, error) {
	o = o.Defaults()
	gens, err := o.generators()
	if err != nil {
		return nil, err
	}
	res := &StreamBenchResult{Options: o, Repeat: streamRepeat, Workers: runtime.GOMAXPROCS(0)}
	for _, g := range gens {
		row, err := streamBenchDataset(g, o)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func streamBenchDataset(g *dataset.Generator, o Options) (StreamRow, error) {
	records := g.Generate(o.scaledN(g), o.Seed)
	var one bytes.Buffer
	for _, rec := range records {
		data, err := json.Marshal(rec.Value)
		if err != nil {
			return StreamRow{}, fmt.Errorf("stream bench: marshal %s: %w", g.Name, err)
		}
		one.Write(data)
		one.WriteByte('\n')
	}
	input := bytes.Repeat(one.Bytes(), streamRepeat)
	row := StreamRow{
		Dataset:    g.Name,
		Records:    len(records) * streamRepeat,
		InputBytes: len(input),
	}

	// Streaming first so the baseline's larger garbage cannot inflate the
	// streaming watermark.
	cfg := core.Default()
	var streamed schema.Schema
	{
		sampler := stats.StartMemSampler(0)
		start := time.Now()
		acc := core.NewAccumulator(cfg)
		_, err := ingest.Each(context.Background(), bytes.NewReader(input),
			ingest.Options{JSONL: true}, func(c ingest.Chunk) error {
				acc.AddBag(c.Bag)
				return nil
			})
		if err != nil {
			return StreamRow{}, fmt.Errorf("stream bench: ingest %s: %w", g.Name, err)
		}
		streamed = schema.Simplify(acc.Finish())
		row.StreamingMillis = float64(time.Since(start).Microseconds()) / 1000.0
		row.StreamingPeakHeap = sampler.Stop()
		row.DistinctTypes = acc.Distinct()
	}

	var materialized schema.Schema
	{
		sampler := stats.StartMemSampler(0)
		start := time.Now()
		types, err := jsontype.DecodeAll(bytes.NewReader(input))
		if err != nil {
			return StreamRow{}, fmt.Errorf("stream bench: decode %s: %w", g.Name, err)
		}
		materialized = schema.Simplify(core.PipelineTypes(types, cfg))
		row.MaterializedMillis = float64(time.Since(start).Microseconds()) / 1000.0
		row.MaterializedPeakHeap = sampler.Stop()
	}

	row.SchemasEqual = schema.Equal(streamed, materialized)
	if row.StreamingPeakHeap > 0 {
		row.PeakHeapRatio = float64(row.MaterializedPeakHeap) / float64(row.StreamingPeakHeap)
	}
	if row.MaterializedMillis > 0 && row.StreamingMillis > 0 {
		row.ThroughputRatio = row.MaterializedMillis / row.StreamingMillis
	}
	return row, nil
}

func (r *StreamBenchResult) table() *table {
	t := &table{
		title: fmt.Sprintf("Streaming vs materialized ingestion (replay ×%d, %d workers)",
			r.Repeat, r.Workers),
		headers: []string{"dataset", "records", "distinct", "MB",
			"materialized ms", "streaming ms", "speedup",
			"mat peak MiB", "stream peak MiB", "mem ratio", "equal"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Dataset,
			fmt.Sprintf("%d", row.Records),
			fmt.Sprintf("%d", row.DistinctTypes),
			fmt.Sprintf("%.1f", float64(row.InputBytes)/(1<<20)),
			fmt.Sprintf("%.1f", row.MaterializedMillis),
			fmt.Sprintf("%.1f", row.StreamingMillis),
			fmt.Sprintf("%.2fx", row.ThroughputRatio),
			fmt.Sprintf("%.1f", float64(row.MaterializedPeakHeap)/(1<<20)),
			fmt.Sprintf("%.1f", float64(row.StreamingPeakHeap)/(1<<20)),
			fmt.Sprintf("%.2fx", row.PeakHeapRatio),
			fmt.Sprintf("%v", row.SchemasEqual))
	}
	return t
}

// Render draws the comparison as an ASCII table.
func (r *StreamBenchResult) Render() string { return r.table().Render() }

// CSV renders the comparison as CSV.
func (r *StreamBenchResult) CSV() string { return r.table().CSV() }

// JSON renders the full measurement for BENCH_stream.json.
func (r *StreamBenchResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
