package experiments

import (
	"strings"

	"jxplain/internal/dataset"
	"jxplain/internal/fd"
	"jxplain/internal/jsontype"
)

// FDRow is one mined presence dependency at one path of one dataset.
type FDRow struct {
	Dataset string
	Path    string
	Rule    fd.Rule
}

// FDResult is the structural-FD extension experiment (§7.3 / §9 future
// work): presence dependencies mined from tuple key sets, exposing latent
// sub-entities like Yelp's by-appointment salons.
type FDResult struct {
	Options Options
	Rows    []FDRow
	// Groups are the bidirectional co-occurrence groups per dataset+path.
	Groups []FDGroup
}

// FDGroup is one co-occurring field group.
type FDGroup struct {
	Dataset string
	Path    string
	Fields  []string
}

// RunFD mines presence FDs from the root key sets and the attributes
// object of the configured datasets (default: yelp-business and
// yelp-merged, where the paper observed them).
func RunFD(o Options) (*FDResult, error) {
	o = o.Defaults()
	if len(o.Datasets) == len(dataset.Names()) {
		o.Datasets = []string{"yelp-business", "yelp-merged"}
	}
	gens, err := o.generators()
	if err != nil {
		return nil, err
	}
	cfg := fd.Config{MinSupport: 20, MinConfidence: 0.85, SkipUniversal: 0.8}
	res := &FDResult{Options: o}
	for _, g := range gens {
		records := g.Generate(o.scaledN(g), o.Seed)

		// Root key sets.
		var rootSets [][]string
		var attrSets [][]string
		for _, rec := range records {
			rootSets = append(rootSets, rec.Type.Keys())
			if attrs := rec.Type.Field("attributes"); attrs != nil && attrs.Kind() == jsontype.KindObject {
				attrSets = append(attrSets, attrs.Keys())
			}
		}
		for path, sets := range map[string][][]string{"$": rootSets, "$.attributes": attrSets} {
			if len(sets) == 0 {
				continue
			}
			rules := fd.MineNames(sets, cfg)
			for _, r := range rules {
				res.Rows = append(res.Rows, FDRow{Dataset: g.Name, Path: path, Rule: r})
			}
			for _, grp := range fd.Groups(rules) {
				res.Groups = append(res.Groups, FDGroup{Dataset: g.Name, Path: path, Fields: grp})
			}
		}
	}
	return res, nil
}

func (r *FDResult) table() *table {
	t := &table{
		title:   "Extension: soft structural FDs (presence rules, conf ≥ 0.85, support ≥ 20)",
		headers: []string{"dataset", "path", "rule", "confidence", "support"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Dataset, row.Path,
			row.Rule.Antecedent+" => "+row.Rule.Consequent,
			f5(row.Rule.Confidence), itoa(row.Rule.Support))
	}
	for _, grp := range r.Groups {
		t.addRow(grp.Dataset, grp.Path, "group: "+strings.Join(grp.Fields, ", "), "", "")
	}
	return t
}

// Render draws the ASCII table.
func (r *FDResult) Render() string { return r.table().Render() }

// CSV renders comma-separated values.
func (r *FDResult) CSV() string { return r.table().CSV() }
