package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"jxplain/internal/core"
	"jxplain/internal/dataset"
	"jxplain/internal/dist"
	"jxplain/internal/ingest"
	"jxplain/internal/schema"
)

// shardIters matches the other wall-time benchmarks: each measurement is
// the mean of this many full map+reduce executions.
const shardIters = 3

// shardWorkerGrid is the scale-out grid (cmd/jxshard's -shards axis).
var shardWorkerGrid = []int{1, 2, 4, 8}

// ShardRow is one (dataset, worker count) cell of the scale-out grid: the
// input is split into `Workers` contiguous shards, each folded to a
// serialized sketch (the map phase, shards in parallel), and the sketches
// are merged in shard order and synthesized once (the reduce phase).
type ShardRow struct {
	Dataset string `json:"dataset"`
	Records int    `json:"records"`
	Workers int    `json:"workers"`

	// MapNs is the map phase wall time per op: all shards decoded, folded
	// and marshaled, running concurrently as cmd/jxshard's worker
	// processes do (here as goroutines, so the grid isolates the
	// algorithmic scaling from process spawn cost).
	MapNs float64 `json:"map_ns"`
	// ReduceNs covers sketch decode, merge, and passes ②/③.
	ReduceNs float64 `json:"reduce_ns"`
	TotalNs  float64 `json:"total_ns"`

	// MapAllocs/ReduceAllocs are heap allocation counts per op for the
	// same two phases — the reduce column is what the merge-into decoder
	// is accountable for.
	MapAllocs    float64 `json:"map_allocs"`
	ReduceAllocs float64 `json:"reduce_allocs"`

	// SketchBytes is the total serialized size of all map outputs — the
	// bytes a cluster would move over the network per discovery.
	SketchBytes int `json:"sketch_bytes"`

	// Speedup is this row's 1-worker TotalNs over this TotalNs.
	Speedup float64 `json:"speedup,omitempty"`

	// ByteIdentical confirms the reduced schema equals the single-process
	// schema byte for byte.
	ByteIdentical bool `json:"byte_identical"`
}

// ShardResult is the scale-out benchmark (BENCH_shard.json).
type ShardResult struct {
	Note string     `json:"note"`
	Rows []ShardRow `json:"rows"`
}

// RunShardBench measures sharded map/reduce discovery over the worker
// grid and verifies byte-equivalence against single-process discovery on
// every cell.
func RunShardBench(o Options) (*ShardResult, error) {
	o = o.Defaults()
	gens, err := o.generators()
	if err != nil {
		return nil, err
	}
	res := &ShardResult{
		Note: fmt.Sprintf("sharded map/reduce via the sketch wire format: contiguous split, parallel shard folds, "+
			"in-order reduce; n=DefaultN, seed=%d, %d iters; speedup is vs the 1-worker row and bounded by "+
			"available cores (GOMAXPROCS=%d here) — byte_identical is the load-bearing column",
			o.Seed, shardIters, runtime.GOMAXPROCS(0)),
	}
	for _, g := range gens {
		rows, err := shardDataset(g, o)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

func shardDataset(g *dataset.Generator, o Options) ([]ShardRow, error) {
	records := g.Generate(o.scaledN(g), o.Seed)
	var input bytes.Buffer
	for _, rec := range records {
		data, err := json.Marshal(rec.Value)
		if err != nil {
			return nil, fmt.Errorf("shard: marshal %s: %w", g.Name, err)
		}
		input.Write(data)
		input.WriteByte('\n')
	}
	lines := bytes.SplitAfter(input.Bytes(), []byte("\n"))
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}

	cfg := core.Default()
	single := core.NewAccumulator(cfg)
	if _, err := ingest.Fold(context.Background(), bytes.NewReader(input.Bytes()),
		ingest.Options{JSONL: true}, single); err != nil {
		return nil, fmt.Errorf("shard: %s: %w", g.Name, err)
	}
	want, err := schema.Marshal(schema.Simplify(single.Finish()))
	if err != nil {
		return nil, err
	}

	var rows []ShardRow
	baseNs := 0.0
	for _, workers := range shardWorkerGrid {
		row, err := shardCell(g.Name, lines, workers, cfg, want)
		if err != nil {
			return nil, err
		}
		row.Records = len(records)
		if workers == 1 {
			baseNs = row.TotalNs
		}
		if baseNs > 0 && row.TotalNs > 0 {
			row.Speedup = baseNs / row.TotalNs
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// shardCell measures one grid cell. Map folds run as one goroutine per
// shard through dist.Map — the in-process analogue of cmd/jxshard's
// worker processes — and the reduce merges the serialized sketches in
// shard order.
func shardCell(name string, lines [][]byte, workers int, cfg core.Config, want []byte) (ShardRow, error) {
	shards := make([][]byte, workers)
	start := 0
	for i := 0; i < workers; i++ {
		end := len(lines) * (i + 1) / workers
		shards[i] = bytes.Join(lines[start:end], nil)
		start = end
	}

	mapPhase := func() ([][]byte, error) {
		sketches := dist.Map(shards, workers, func(shard []byte) []byte {
			acc := core.NewAccumulator(core.Default())
			// One decode worker per mapper: the shard count is then the
			// only parallelism axis, modeling a cluster of single-core
			// map tasks rather than co-scheduled multi-core processes.
			if _, err := ingest.Fold(context.Background(), bytes.NewReader(shard),
				ingest.Options{JSONL: true, Workers: 1}, acc); err != nil {
				return nil
			}
			data, err := acc.Marshal()
			if err != nil {
				return nil
			}
			return data
		})
		for _, s := range sketches {
			if s == nil {
				return nil, fmt.Errorf("shard: %s: map fold failed", name)
			}
		}
		return sketches, nil
	}
	reducePhase := func(sketches [][]byte) ([]byte, error) {
		acc := core.NewAccumulator(cfg)
		for _, data := range sketches {
			if err := acc.MergeSketch(data); err != nil {
				return nil, err
			}
		}
		return schema.Marshal(schema.Simplify(acc.Finish()))
	}

	row := ShardRow{Dataset: name, Workers: workers}

	// Warm up once (interner growth, allocator) and verify equivalence on
	// the warm-up pass so a broken cell fails before it is measured.
	sketches, err := mapPhase()
	if err != nil {
		return row, err
	}
	for _, s := range sketches {
		row.SketchBytes += len(s)
	}
	got, err := reducePhase(sketches)
	if err != nil {
		return row, fmt.Errorf("shard: %s workers=%d: %w", name, row.Workers, err)
	}
	row.ByteIdentical = bytes.Equal(got, want)
	if !row.ByteIdentical {
		// Byte-equivalence is the contract, not a best-effort property:
		// a divergent cell means the wire format or merge order broke, and
		// the whole run fails rather than recording timings for a wrong
		// answer.
		return row, fmt.Errorf("shard: %s workers=%d: reduced schema diverges from single-process schema",
			name, row.Workers)
	}

	var mapTotal, reduceTotal time.Duration
	var mapAllocs, reduceAllocs uint64
	var m0, m1, m2 runtime.MemStats
	for i := 0; i < shardIters; i++ {
		runtime.ReadMemStats(&m0)
		t0 := time.Now()
		sketches, err := mapPhase()
		if err != nil {
			return row, err
		}
		t1 := time.Now()
		runtime.ReadMemStats(&m1)
		if _, err := reducePhase(sketches); err != nil {
			return row, err
		}
		reduceEnd := time.Now()
		runtime.ReadMemStats(&m2)
		mapTotal += t1.Sub(t0)
		reduceTotal += reduceEnd.Sub(t1)
		mapAllocs += m1.Mallocs - m0.Mallocs
		reduceAllocs += m2.Mallocs - m1.Mallocs
	}
	row.MapNs = float64(mapTotal.Nanoseconds()) / shardIters
	row.ReduceNs = float64(reduceTotal.Nanoseconds()) / shardIters
	row.TotalNs = row.MapNs + row.ReduceNs
	row.MapAllocs = float64(mapAllocs) / shardIters
	row.ReduceAllocs = float64(reduceAllocs) / shardIters
	return row, nil
}

func (r *ShardResult) table() *table {
	t := &table{
		title: "Sharded map/reduce discovery (sketch wire format)",
		headers: []string{"dataset", "records", "workers", "map ms", "reduce ms",
			"total ms", "map allocs", "reduce allocs", "sketch KiB", "speedup", "identical"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Dataset,
			fmt.Sprintf("%d", row.Records),
			fmt.Sprintf("%d", row.Workers),
			fmt.Sprintf("%.2f", row.MapNs/1e6),
			fmt.Sprintf("%.2f", row.ReduceNs/1e6),
			fmt.Sprintf("%.2f", row.TotalNs/1e6),
			fmt.Sprintf("%.0f", row.MapAllocs),
			fmt.Sprintf("%.0f", row.ReduceAllocs),
			fmt.Sprintf("%.1f", float64(row.SketchBytes)/1024),
			fmt.Sprintf("%.2fx", row.Speedup),
			fmt.Sprintf("%v", row.ByteIdentical))
	}
	return t
}

// Render formats the grid as an ASCII table.
func (r *ShardResult) Render() string { return r.table().Render() }

// CSV formats the grid as CSV.
func (r *ShardResult) CSV() string { return r.table().CSV() }

// JSON serializes the result for results/BENCH_shard.json.
func (r *ShardResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
