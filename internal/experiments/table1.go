package experiments

import (
	"jxplain/internal/dataset"
	"jxplain/internal/metrics"
	"jxplain/internal/stats"
)

// Table1Cell aggregates recall over trials for one dataset × fraction ×
// algorithm.
type Table1Cell struct {
	Mean, Std, Max float64
}

// Table1Result is the recall experiment (paper Table 1).
type Table1Result struct {
	Options   Options
	Datasets  []string
	Fractions []float64
	// Cells[dataset][fraction][algorithm]
	Cells map[string]map[float64]map[Algorithm]Table1Cell
}

// RunTable1 measures, for every dataset, training fraction and algorithm,
// the fraction of a held-out 10% test set accepted by the discovered
// schema, over Options.Trials independent train/test splits.
func RunTable1(o Options) (*Table1Result, error) {
	o = o.Defaults()
	gens, err := o.generators()
	if err != nil {
		return nil, err
	}
	res := &Table1Result{
		Options:   o,
		Fractions: o.Fractions,
		Cells:     map[string]map[float64]map[Algorithm]Table1Cell{},
	}
	for _, g := range gens {
		res.Datasets = append(res.Datasets, g.Name)
		res.Cells[g.Name] = map[float64]map[Algorithm]Table1Cell{}
		for _, frac := range o.Fractions {
			sums := map[Algorithm]*stats.Summary{}
			for _, alg := range Algorithms {
				sums[alg] = &stats.Summary{}
			}
			for trial := 0; trial < o.Trials; trial++ {
				records := g.Generate(o.scaledN(g), o.Seed+int64(trial))
				train, test := split(records, frac, o.Seed+int64(1000+trial))
				trainTypes := dataset.Types(train)
				testTypes := dataset.Types(test)
				for _, alg := range Algorithms {
					s := Discover(alg, trainTypes)
					sums[alg].Add(metrics.Recall(s, testTypes))
				}
			}
			cell := map[Algorithm]Table1Cell{}
			for _, alg := range Algorithms {
				cell[alg] = Table1Cell{Mean: sums[alg].Mean(), Std: sums[alg].Std(), Max: sums[alg].Max()}
			}
			res.Cells[g.Name][frac] = cell
		}
	}
	return res, nil
}

func (r *Table1Result) table() *table {
	t := &table{
		title: "Table 1: Recall — fraction of the 10% test set accepted by the generated schema",
		headers: []string{"dataset", "train",
			"K-red mean", "K-red std", "K-red max",
			"BxM mean", "BxM std", "BxM max",
			"BxN mean", "BxN std", "BxN max",
			"L-red mean", "L-red std", "L-red max"},
	}
	for _, ds := range r.Datasets {
		for _, frac := range r.Fractions {
			cell := r.Cells[ds][frac]
			row := []string{ds, pct(frac)}
			for _, alg := range Algorithms {
				c := cell[alg]
				row = append(row, f5(c.Mean), f5(c.Std), f5(c.Max))
			}
			t.addRow(row...)
		}
	}
	return t
}

// Render draws the ASCII table.
func (r *Table1Result) Render() string { return r.table().Render() }

// CSV renders comma-separated values.
func (r *Table1Result) CSV() string { return r.table().CSV() }
