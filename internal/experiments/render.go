package experiments

import (
	"fmt"
	"strings"
)

// table is a small ASCII/CSV renderer shared by all experiment results.
type table struct {
	title   string
	headers []string
	rows    [][]string
}

func (t *table) addRow(cells ...string) { t.rows = append(t.rows, cells) }

// Render draws the table with aligned columns.
func (t *table) Render() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quoted where needed).
func (t *table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

func f5(x float64) string  { return fmt.Sprintf("%.5f", x) }
func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func f1(x float64) string  { return fmt.Sprintf("%.1f", x) }
func pct(f float64) string { return fmt.Sprintf("%d%%", int(f*100+0.5)) }
