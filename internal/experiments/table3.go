package experiments

import (
	"jxplain/internal/core"
	"jxplain/internal/dataset"
	"jxplain/internal/jsontype"
	"jxplain/internal/metrics"
	"jxplain/internal/schema"
)

// Table3Row is the entity-detection accuracy for one ground-truth entity:
// the symmetric difference between the entity's schema and the most
// similar discovered cluster, per clustering approach (lower is better).
type Table3Row struct {
	Dataset string
	Entity  string
	KReduce int
	Bimax   int
	KMeans  int
}

// Table3Result is the clustering-accuracy experiment (paper Table 3) over
// the two datasets with (inferable) ground truth: Yelp-Merged and GitHub.
type Table3Result struct {
	Options Options
	Rows    []Table3Row
}

// RunTable3 compares K-reduce (one cluster), Bimax-Merge, and k-means
// (with the ground-truth k, unavailable in practice) against ground-truth
// entity schemas derived from the labeled records.
func RunTable3(o Options) (*Table3Result, error) {
	o = o.Defaults()
	if len(o.Datasets) == len(dataset.Names()) {
		o.Datasets = []string{"yelp-merged", "github"}
	}
	gens, err := o.generators()
	if err != nil {
		return nil, err
	}
	res := &Table3Result{Options: o}
	for _, g := range gens {
		records := g.Generate(o.scaledN(g), o.Seed)
		train, _ := split(records, 0.9, o.Seed+1000)
		trainTypes := dataset.Types(train)

		// Ground-truth schemas: single-entity discovery per labeled group.
		byEntity := map[string][]*jsontype.Type{}
		for _, rec := range train {
			byEntity[rec.Entity] = append(byEntity[rec.Entity], rec.Type)
		}
		singleCfg := core.Default()
		singleCfg.Partition = core.SingleEntity

		// The three compared clusterings.
		kReduceClusters := rootEntitiesOf(Discover(KReduce, trainTypes))
		bimaxClusters := rootEntitiesOf(Discover(BimaxMerge, trainTypes))
		kmeansCfg := core.Default()
		kmeansCfg.Partition = core.KMeansStrategy
		kmeansCfg.KMeansK = len(byEntity)
		kmeansCfg.Seed = o.Seed
		kmeansClusters := rootEntitiesOf(schema.Simplify(core.PipelineTypes(trainTypes, kmeansCfg)))

		for _, entityName := range g.Entities {
			types := byEntity[entityName]
			if len(types) == 0 {
				continue
			}
			truth := schema.Simplify(core.DiscoverTypes(types, singleCfg))
			res.Rows = append(res.Rows, Table3Row{
				Dataset: g.Name,
				Entity:  entityName,
				KReduce: metrics.MinSymmetricDiff(kReduceClusters, truth),
				Bimax:   metrics.MinSymmetricDiff(bimaxClusters, truth),
				KMeans:  metrics.MinSymmetricDiff(kmeansClusters, truth),
			})
		}
	}
	return res, nil
}

func rootEntitiesOf(s schema.Schema) []schema.Schema {
	entities, _ := metrics.RootEntitySchemas(s)
	return entities
}

func (r *Table3Result) table() *table {
	t := &table{
		title:   "Table 3: Minimum symmetric difference from ground-truth entity schema (lower is better)",
		headers: []string{"dataset", "entity", "K-reduce", "Bimax-Merge", "k-means"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Dataset, row.Entity,
			itoa(row.KReduce), itoa(row.Bimax), itoa(row.KMeans))
	}
	return t
}

// Render draws the ASCII table.
func (r *Table3Result) Render() string { return r.table().Render() }

// CSV renders comma-separated values.
func (r *Table3Result) CSV() string { return r.table().CSV() }
