package experiments

import (
	"math"

	"jxplain/internal/dataset"
	"jxplain/internal/metrics"
	"jxplain/internal/stats"
)

// Table2Cell aggregates schema entropy over trials.
type Table2Cell struct {
	Mean, Std float64
}

// Table2Result is the schema-entropy experiment (paper Table 2): the log2
// number of types admitted by each generated schema — given equal recall,
// fewer admitted types means a more precise schema.
type Table2Result struct {
	Options   Options
	Datasets  []string
	Fractions []float64
	Cells     map[string]map[float64]map[Algorithm]Table2Cell
}

// RunTable2 measures schema entropy for every dataset, training fraction
// and algorithm.
func RunTable2(o Options) (*Table2Result, error) {
	o = o.Defaults()
	gens, err := o.generators()
	if err != nil {
		return nil, err
	}
	res := &Table2Result{
		Options:   o,
		Fractions: o.Fractions,
		Cells:     map[string]map[float64]map[Algorithm]Table2Cell{},
	}
	for _, g := range gens {
		res.Datasets = append(res.Datasets, g.Name)
		res.Cells[g.Name] = map[float64]map[Algorithm]Table2Cell{}
		for _, frac := range o.Fractions {
			sums := map[Algorithm]*stats.Summary{}
			for _, alg := range Algorithms {
				sums[alg] = &stats.Summary{}
			}
			for trial := 0; trial < o.Trials; trial++ {
				records := g.Generate(o.scaledN(g), o.Seed+int64(trial))
				train, _ := split(records, frac, o.Seed+int64(1000+trial))
				trainTypes := dataset.Types(train)
				for _, alg := range Algorithms {
					s := Discover(alg, trainTypes)
					e := metrics.SchemaEntropy(s)
					if math.IsInf(e, -1) {
						e = 0 // empty schema: zero admitted types
					}
					sums[alg].Add(e)
				}
			}
			cell := map[Algorithm]Table2Cell{}
			for _, alg := range Algorithms {
				cell[alg] = Table2Cell{Mean: sums[alg].Mean(), Std: sums[alg].Std()}
			}
			res.Cells[g.Name][frac] = cell
		}
	}
	return res, nil
}

func (r *Table2Result) table() *table {
	t := &table{
		title: "Table 2: Schema entropy — log2 number of types admitted by the generated schema",
		headers: []string{"dataset", "train",
			"K-red mean", "K-red std", "BxM mean", "BxM std",
			"BxN mean", "BxN std", "L-red mean", "L-red std"},
	}
	for _, ds := range r.Datasets {
		for _, frac := range r.Fractions {
			cell := r.Cells[ds][frac]
			row := []string{ds, pct(frac)}
			for _, alg := range Algorithms {
				c := cell[alg]
				row = append(row, f2(c.Mean), f2(c.Std))
			}
			t.addRow(row...)
		}
	}
	return t
}

// Render draws the ASCII table.
func (r *Table2Result) Render() string { return r.table().Render() }

// CSV renders comma-separated values.
func (r *Table2Result) CSV() string { return r.table().CSV() }
