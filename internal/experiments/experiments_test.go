package experiments

import (
	"strconv"
	"strings"
	"testing"

	"jxplain/internal/dataset"
	"jxplain/internal/jsontype"
)

// smallOpts keeps experiment tests fast: tiny datasets, two fractions,
// two trials.
func smallOpts(datasets ...string) Options {
	return Options{
		Datasets:  datasets,
		Fractions: []float64{0.10, 0.50},
		Trials:    2,
		Scale:     0.12,
		Seed:      1,
	}
}

func TestDiscoverAlgorithms(t *testing.T) {
	g, _ := dataset.ByName("yelp-photos")
	types := dataset.Types(g.Generate(100, 1))
	for _, alg := range Algorithms {
		s := Discover(alg, types)
		for _, ty := range types {
			if !s.Accepts(ty) {
				t.Errorf("%s rejects a training record", alg)
				break
			}
		}
	}
}

func TestDiscoverPanicsOnUnknownAlgorithm(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown algorithm should panic")
		}
	}()
	Discover(Algorithm("bogus"), nil)
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.Defaults()
	if o.Trials != 5 || o.Scale != 1 || len(o.Fractions) != 4 || len(o.Datasets) != 13 {
		t.Errorf("defaults wrong: %+v", o)
	}
	if _, err := (Options{Datasets: []string{"nope"}}).generators(); err == nil {
		t.Error("unknown dataset should error")
	}
}

func TestSplitRespectsFractions(t *testing.T) {
	// Records with a unique key each: interning shares pointers between
	// same-shaped types, so the pointer-disjointness check below needs
	// every record to have distinct structure.
	records := make([]dataset.Record, 1000)
	for i := range records {
		records[i] = dataset.Record{
			Type: jsontype.MustFromValue(map[string]any{"k" + strconv.Itoa(i): 1.0}),
		}
	}
	train, test := split(records, 0.5, 7)
	if len(test) != 100 {
		t.Errorf("test size = %d, want 100", len(test))
	}
	if len(train) != 500 {
		t.Errorf("train size = %d, want 500", len(train))
	}
	// Train and test must be disjoint (by position), checked via pointers.
	seen := map[*jsontype.Type]bool{}
	for _, r := range test {
		seen[r.Type] = true
	}
	for _, r := range train {
		if seen[r.Type] {
			t.Fatal("train/test overlap")
		}
	}
	// Oversized fraction clamps to the non-test remainder.
	train2, _ := split(records, 5.0, 7)
	if len(train2) != 900 {
		t.Errorf("clamped train = %d, want 900", len(train2))
	}
}

func TestRunTable1ShapesHold(t *testing.T) {
	res, err := RunTable1(smallOpts("pharma", "yelp-merged"))
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range res.Datasets {
		for _, frac := range res.Fractions {
			cell := res.Cells[ds][frac]
			// The paper's headline shapes: JXPLAIN and K-reduce both achieve
			// high recall; L-reduce is far below.
			if cell[BimaxMerge].Mean < 0.9 {
				t.Errorf("%s@%v: Bimax-Merge recall %v too low", ds, frac, cell[BimaxMerge].Mean)
			}
			if cell[LReduce].Mean > cell[BimaxMerge].Mean {
				t.Errorf("%s@%v: L-reduce should not beat Bimax-Merge", ds, frac)
			}
		}
	}
	// Pharma at low fractions: Bimax-Merge generalizes better than K-reduce.
	small := res.Cells["pharma"][0.10]
	if small[BimaxMerge].Mean < small[KReduce].Mean {
		t.Errorf("pharma: Bimax-Merge (%v) should beat K-reduce (%v) at small samples",
			small[BimaxMerge].Mean, small[KReduce].Mean)
	}
	out := res.Render()
	if !strings.Contains(out, "pharma") || !strings.Contains(out, "Recall") {
		t.Error("render missing content")
	}
	if !strings.Contains(res.CSV(), "dataset,train") {
		t.Error("CSV header missing")
	}
}

func TestRunTable2PrecisionOrdering(t *testing.T) {
	res, err := RunTable2(smallOpts("yelp-merged", "github"))
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range res.Datasets {
		cell := res.Cells[ds][0.50]
		// The paper's claim (i): JXPLAIN admits fewer types than K-reduce;
		// L-reduce is the lower bound.
		if cell[BimaxMerge].Mean > cell[KReduce].Mean {
			t.Errorf("%s: Bimax-Merge entropy (%v) should be ≤ K-reduce (%v)",
				ds, cell[BimaxMerge].Mean, cell[KReduce].Mean)
		}
		if cell[LReduce].Mean > cell[BimaxMerge].Mean {
			t.Errorf("%s: L-reduce entropy (%v) should be ≤ Bimax-Merge (%v)",
				ds, cell[LReduce].Mean, cell[BimaxMerge].Mean)
		}
	}
	if !strings.Contains(res.Render(), "Schema entropy") {
		t.Error("render missing title")
	}
}

func TestRunTable3BimaxBeatsBaselines(t *testing.T) {
	o := smallOpts("yelp-merged")
	o.Scale = 0.4
	res, err := RunTable3(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("expected 6 yelp entities, got %d", len(res.Rows))
	}
	var bimaxTotal, kReduceTotal int
	for _, row := range res.Rows {
		bimaxTotal += row.Bimax
		kReduceTotal += row.KReduce
	}
	if bimaxTotal >= kReduceTotal {
		t.Errorf("Bimax-Merge total diff (%d) should beat K-reduce (%d)", bimaxTotal, kReduceTotal)
	}
	if !strings.Contains(res.Render(), "symmetric difference") {
		t.Error("render missing title")
	}
	if !strings.Contains(res.CSV(), "k-means") {
		t.Error("CSV missing k-means column")
	}
}

func TestRunTable3DefaultsToGroundTruthDatasets(t *testing.T) {
	o := Options{Fractions: []float64{0.5}, Trials: 1, Scale: 0.05, Seed: 1}
	res, err := RunTable3(o)
	if err != nil {
		t.Fatal(err)
	}
	datasets := map[string]bool{}
	for _, row := range res.Rows {
		datasets[row.Dataset] = true
	}
	if !datasets["yelp-merged"] || !datasets["github"] || len(datasets) != 2 {
		t.Errorf("default table 3 datasets = %v", datasets)
	}
}

func TestRunTable4GreedyMergeHelps(t *testing.T) {
	o := smallOpts("yelp-merged", "yelp-photos", "pharma")
	o.Scale = 0.25
	o.Trials = 2
	res, err := RunTable4(o)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table4Row{}
	for _, row := range res.Rows {
		byName[row.Dataset] = row
	}
	// Claim (iv): merge never increases entity counts, and on the merged
	// dataset it must actually reduce them.
	for name, row := range byName {
		if row.BimaxMergeMean > row.BimaxNaiveMean {
			t.Errorf("%s: merge (%v) should not exceed naive (%v)",
				name, row.BimaxMergeMean, row.BimaxNaiveMean)
		}
		if row.LReduceMean < row.BimaxNaiveMean {
			t.Errorf("%s: L-reduce distinct types (%v) should dominate (%v)",
				name, row.LReduceMean, row.BimaxNaiveMean)
		}
	}
	if byName["yelp-merged"].BimaxMergeMean >= byName["yelp-merged"].BimaxNaiveMean &&
		byName["yelp-merged"].BimaxNaiveMean > 6 {
		t.Errorf("yelp-merged: GreedyMerge should coalesce entities: naive=%v merge=%v",
			byName["yelp-merged"].BimaxNaiveMean, byName["yelp-merged"].BimaxMergeMean)
	}
	if byName["yelp-photos"].BimaxMergeMean != 1 {
		t.Errorf("yelp-photos must be a single entity, got %v", byName["yelp-photos"].BimaxMergeMean)
	}
	if !strings.Contains(res.Render(), "Entity predictions") {
		t.Error("render missing title")
	}
}

func TestRunTable5ReportsBothAlgorithms(t *testing.T) {
	res, err := RunTable5(smallOpts("yelp-tip", "nyt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range res.Datasets {
		for _, frac := range res.Fractions {
			cell := res.Cells[ds][frac]
			if cell[KReduce].Mean <= 0 || cell[BimaxMerge].Mean <= 0 {
				t.Errorf("%s@%v: non-positive runtime", ds, frac)
			}
		}
	}
	if !strings.Contains(res.Render(), "Runtime") && !strings.Contains(res.Render(), "runtime") {
		t.Error("render missing title")
	}
}

func TestRunFigure4Bimodal(t *testing.T) {
	o := Options{Trials: 1, Scale: 0.2, Seed: 1}
	res, err := RunFigure4(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no entropy points collected")
	}
	// Bimodality: the gray zone around the threshold holds few points.
	if float64(res.GrayZone) > 0.2*float64(len(res.Points)) {
		t.Errorf("distribution not bimodal: %d of %d points near threshold",
			res.GrayZone, len(res.Points))
	}
	if !strings.Contains(res.Render(), "Key-space entropy") {
		t.Error("render missing title")
	}
	if !strings.Contains(res.CSV(), "entropy") {
		t.Error("CSV missing header")
	}
}

func TestRunFigure5PruningSavesMemory(t *testing.T) {
	o := Options{Trials: 1, Scale: 0.15, Seed: 1}
	res, err := RunFigure5(o)
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		ds    string
		prune bool
	}
	sparseBytes := map[key]int{}
	for _, row := range res.Rows {
		if row.Encoding.String() == "sparse" {
			sparseBytes[key{row.Dataset, row.PruneNested}] = row.Bytes
		}
	}
	for _, ds := range []string{"yelp-merged", "pharma"} {
		if sparseBytes[key{ds, true}] >= sparseBytes[key{ds, false}] {
			t.Errorf("%s: pruning should reduce memory (%d vs %d)",
				ds, sparseBytes[key{ds, true}], sparseBytes[key{ds, false}])
		}
	}
	// Pharma: pruning removes nearly all structure (paper: "to nearly nothing").
	if p := sparseBytes[key{"pharma", true}]; p*10 > sparseBytes[key{"pharma", false}] {
		t.Errorf("pharma pruned memory (%d) should be ≪ unpruned (%d)",
			p, sparseBytes[key{"pharma", false}])
	}
	if !strings.Contains(res.Render(), "Feature-vector memory") {
		t.Error("render missing title")
	}
}

func TestRunEdits(t *testing.T) {
	o := smallOpts("yelp-business", "pharma")
	o.Scale = 0.3
	res, err := RunEdits(o)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]EditsRow{}
	for _, row := range res.Rows {
		byName[row.Dataset] = row
	}
	// Pharma: K-reduce needs an edit per unseen drug; Bimax-Merge's
	// collection generalizes (§7.5: "Bimax-Merge does better on datasets
	// with collection-like objects").
	if byName["pharma"].BimaxMerge >= byName["pharma"].KReduce {
		t.Errorf("pharma edits: Bimax-Merge (%d) should be ≪ K-reduce (%d)",
			byName["pharma"].BimaxMerge, byName["pharma"].KReduce)
	}
	if !strings.Contains(res.Render(), "edits") {
		t.Error("render missing title")
	}
}

func TestRunThresholdStability(t *testing.T) {
	o := smallOpts("yelp-checkin")
	o.Scale = 0.2
	res, err := RunThreshold(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(res.Thresholds) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// §5.3: recall is stable across thresholds on bimodal data.
	for _, row := range res.Rows {
		if row.Recall < 0.95 {
			t.Errorf("threshold %v: recall dropped to %v", row.Threshold, row.Recall)
		}
	}
}

func TestRunStaged(t *testing.T) {
	o := smallOpts("yelp-review", "nyt")
	o.Trials = 1
	res, err := RunStaged(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if !row.SameSchema {
			t.Errorf("%s: single-entity dataset should give identical schemas", row.Dataset)
		}
		if row.RecallRecur != row.RecallPipe {
			t.Errorf("%s: recalls diverge", row.Dataset)
		}
	}
}

func TestRunIterative(t *testing.T) {
	o := smallOpts("yelp-photos", "pharma")
	o.Scale = 0.2
	res, err := RunIterative(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if !row.Converged {
			t.Errorf("%s: iterative discovery should converge", row.Dataset)
		}
		if row.Recall < 0.9 {
			t.Errorf("%s: iterative recall %v too low", row.Dataset, row.Recall)
		}
		if row.FinalSample > row.TotalN {
			t.Errorf("%s: sample exceeded data", row.Dataset)
		}
	}
}

func TestRunSampledDetection(t *testing.T) {
	o := smallOpts("pharma", "yelp-checkin")
	o.Scale = 0.3
	res, err := RunSampledDetection(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 { // 2 datasets × 4 fractions
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Sample == 1 && row.DecisionAgreement != 1 {
			t.Errorf("%s: exact mode must agree with itself", row.Dataset)
		}
		// §4.2: even small samples are almost perfect on collection-heavy data.
		if row.Sample >= 0.10 && row.DecisionAgreement < 0.9 {
			t.Errorf("%s@%v: agreement %v too low", row.Dataset, row.Sample, row.DecisionAgreement)
		}
		if row.Sample >= 0.10 && row.Recall < 0.95 {
			t.Errorf("%s@%v: recall %v too low", row.Dataset, row.Sample, row.Recall)
		}
	}
	if !strings.Contains(res.Render(), "entropy approximation") {
		t.Error("render missing title")
	}
}

func TestRunFD(t *testing.T) {
	o := Options{Trials: 1, Scale: 1, Seed: 11, Datasets: []string{"yelp-business"}}
	res, err := RunFD(o)
	if err != nil {
		t.Fatal(err)
	}
	foundSalon := false
	for _, row := range res.Rows {
		if row.Path == "$.attributes" && row.Rule.Consequent == "ByAppointmentOnly" {
			foundSalon = true
		}
	}
	if !foundSalon {
		t.Errorf("salon FD not found in %d rules", len(res.Rows))
	}
	foundGroup := false
	for _, grp := range res.Groups {
		if grp.Path == "$.attributes" && len(grp.Fields) >= 2 {
			foundGroup = true
		}
	}
	if !foundGroup {
		t.Error("expected a salon attribute co-occurrence group")
	}
	if !strings.Contains(res.Render(), "FD") {
		t.Error("render missing title")
	}
}

func TestRunDescribe(t *testing.T) {
	o := smallOpts("yelp-merged")
	o.Scale = 0.25
	res, err := RunDescribe(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byAlg := map[Algorithm]DescribeRow{}
	for _, row := range res.Rows {
		byAlg[row.Algorithm] = row
	}
	// L-reduce enumerates every distinct type: by far the longest
	// description. JXPLAIN's entity/collection structure stays compact.
	if byAlg[LReduce].Stats.DescriptionLength <= byAlg[BimaxMerge].Stats.DescriptionLength {
		t.Errorf("L-reduce (%d bytes) should dwarf Bimax-Merge (%d bytes)",
			byAlg[LReduce].Stats.DescriptionLength, byAlg[BimaxMerge].Stats.DescriptionLength)
	}
	if byAlg[BimaxMerge].Stats.Nodes >= byAlg[BimaxNaive].Stats.Nodes {
		t.Errorf("GreedyMerge should shrink the schema: %d vs %d nodes",
			byAlg[BimaxMerge].Stats.Nodes, byAlg[BimaxNaive].Stats.Nodes)
	}
	// K-reduce's single blended entity has (almost) no required fields at
	// the root — everything is optional; JXPLAIN keeps required structure.
	if byAlg[BimaxMerge].Stats.RequiredFields <= byAlg[KReduce].Stats.RequiredFields {
		t.Errorf("Bimax-Merge should retain required fields (%d vs %d)",
			byAlg[BimaxMerge].Stats.RequiredFields, byAlg[KReduce].Stats.RequiredFields)
	}
	if !strings.Contains(res.Render(), "Description size") {
		t.Error("render missing title")
	}
	if !strings.Contains(res.CSV(), "desc bytes") {
		t.Error("CSV missing header")
	}
}

func TestAllResultsRenderAndCSV(t *testing.T) {
	// Every result type must produce non-empty ASCII and CSV output with a
	// header row; exercised uniformly here so renderers cannot rot.
	o := smallOpts("yelp-photos")
	o.Scale = 0.05
	o.Trials = 1
	type renderable interface {
		Render() string
		CSV() string
	}
	runners := map[string]func() (renderable, error){
		"table1":    func() (renderable, error) { return RunTable1(o) },
		"table2":    func() (renderable, error) { return RunTable2(o) },
		"table4":    func() (renderable, error) { return RunTable4(o) },
		"table5":    func() (renderable, error) { return RunTable5(o) },
		"edits":     func() (renderable, error) { return RunEdits(o) },
		"threshold": func() (renderable, error) { return RunThreshold(o) },
		"staged":    func() (renderable, error) { return RunStaged(o) },
		"iterative": func() (renderable, error) { return RunIterative(o) },
		"sampled":   func() (renderable, error) { return RunSampledDetection(o) },
		"describe":  func() (renderable, error) { return RunDescribe(o) },
		"fd":        func() (renderable, error) { return RunFD(o) },
		"figure5":   func() (renderable, error) { return RunFigure5(o) },
	}
	for name, fn := range runners {
		res, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Render()) == 0 {
			t.Errorf("%s: empty render", name)
		}
		csv := res.CSV()
		if len(csv) == 0 || !strings.Contains(csv, ",") {
			t.Errorf("%s: bad CSV %q", name, csv)
		}
	}
}

func TestRunnersRejectUnknownDatasets(t *testing.T) {
	bad := Options{Datasets: []string{"bogus"}}
	if _, err := RunTable1(bad); err == nil {
		t.Error("RunTable1 should reject unknown dataset")
	}
	if _, err := RunTable2(bad); err == nil {
		t.Error("RunTable2 should reject unknown dataset")
	}
	if _, err := RunTable3(bad); err == nil {
		t.Error("RunTable3 should reject unknown dataset")
	}
	if _, err := RunTable4(bad); err == nil {
		t.Error("RunTable4 should reject unknown dataset")
	}
	if _, err := RunTable5(bad); err == nil {
		t.Error("RunTable5 should reject unknown dataset")
	}
	if _, err := RunFigure4(bad); err == nil {
		t.Error("RunFigure4 should reject unknown dataset")
	}
	if _, err := RunFigure5(bad); err == nil {
		t.Error("RunFigure5 should reject unknown dataset")
	}
	if _, err := RunEdits(bad); err == nil {
		t.Error("RunEdits should reject unknown dataset")
	}
	if _, err := RunThreshold(bad); err == nil {
		t.Error("RunThreshold should reject unknown dataset")
	}
	if _, err := RunStaged(bad); err == nil {
		t.Error("RunStaged should reject unknown dataset")
	}
	if _, err := RunIterative(bad); err == nil {
		t.Error("RunIterative should reject unknown dataset")
	}
	if _, err := RunSampledDetection(bad); err == nil {
		t.Error("RunSampledDetection should reject unknown dataset")
	}
}
