package experiments

import (
	"time"

	"jxplain/internal/core"
	"jxplain/internal/dataset"
	"jxplain/internal/metrics"
	"jxplain/internal/stats"
)

// EditsRow reports the §7.5 measurement for one dataset: the greedy upper
// bound on manual schema edits needed for the 1%-trained schema to accept
// every record of the test set.
type EditsRow struct {
	Dataset    string
	KReduce    int
	BimaxMerge int
}

// EditsResult is the schema-edits experiment (§7.5).
type EditsResult struct {
	Options Options
	Rows    []EditsRow
}

// RunEdits measures edits-to-full-recall at 1% training for K-reduce and
// Bimax-Merge. The paper's finding: both need manual repair on complex
// data, with Bimax-Merge better on collection-heavy datasets and K-reduce
// better on rarely-missing shared attributes.
func RunEdits(o Options) (*EditsResult, error) {
	o = o.Defaults()
	gens, err := o.generators()
	if err != nil {
		return nil, err
	}
	res := &EditsResult{Options: o}
	for _, g := range gens {
		records := g.Generate(o.scaledN(g), o.Seed)
		train, test := split(records, 0.01, o.Seed+1000)
		trainTypes := dataset.Types(train)
		testTypes := dataset.Types(test)
		kN, _ := metrics.EditsToFullRecall(Discover(KReduce, trainTypes), testTypes)
		mN, _ := metrics.EditsToFullRecall(Discover(BimaxMerge, trainTypes), testTypes)
		res.Rows = append(res.Rows, EditsRow{Dataset: g.Name, KReduce: kN, BimaxMerge: mN})
	}
	return res, nil
}

func (r *EditsResult) table() *table {
	t := &table{
		title:   "§7.5: Greedy upper bound on schema edits to reach 100% recall (1% training)",
		headers: []string{"dataset", "K-reduce edits", "Bimax-Merge edits"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Dataset, itoa(row.KReduce), itoa(row.BimaxMerge))
	}
	return t
}

// Render draws the ASCII table.
func (r *EditsResult) Render() string { return r.table().Render() }

// CSV renders comma-separated values.
func (r *EditsResult) CSV() string { return r.table().CSV() }

// ThresholdRow reports recall and entropy at one entropy-threshold value.
type ThresholdRow struct {
	Dataset   string
	Threshold float64
	Recall    float64
	Entropy   float64
}

// ThresholdResult is the threshold-sensitivity ablation (§5.3's claim that
// the heuristic is minimally sensitive to the precise threshold).
type ThresholdResult struct {
	Options    Options
	Thresholds []float64
	Rows       []ThresholdRow
}

// RunThreshold sweeps the collection-detection entropy threshold and
// measures JXPLAIN's recall (10% test) and schema entropy at 50% training.
func RunThreshold(o Options) (*ThresholdResult, error) {
	o = o.Defaults()
	gens, err := o.generators()
	if err != nil {
		return nil, err
	}
	thresholds := []float64{0.25, 0.5, 0.75, 1.0, 1.5, 2.0}
	res := &ThresholdResult{Options: o, Thresholds: thresholds}
	for _, g := range gens {
		records := g.Generate(o.scaledN(g), o.Seed)
		train, test := split(records, 0.5, o.Seed+1000)
		trainTypes := dataset.Types(train)
		testTypes := dataset.Types(test)
		for _, th := range thresholds {
			cfg := core.Default()
			cfg.Detection.Threshold = th
			s := core.PipelineTypes(trainTypes, cfg)
			res.Rows = append(res.Rows, ThresholdRow{
				Dataset:   g.Name,
				Threshold: th,
				Recall:    metrics.Recall(s, testTypes),
				Entropy:   metrics.SchemaEntropy(s),
			})
		}
	}
	return res, nil
}

func (r *ThresholdResult) table() *table {
	t := &table{
		title:   "Ablation: entropy-threshold sensitivity (50% training)",
		headers: []string{"dataset", "threshold", "recall", "schema entropy"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Dataset, f2(row.Threshold), f5(row.Recall), f2(row.Entropy))
	}
	return t
}

// Render draws the ASCII table.
func (r *ThresholdResult) Render() string { return r.table().Render() }

// CSV renders comma-separated values.
func (r *ThresholdResult) CSV() string { return r.table().CSV() }

// StagedRow compares the recursive §4.1 implementation with the staged
// Figure-3 pipeline on one dataset.
type StagedRow struct {
	Dataset     string
	RecursiveMs float64
	PipelineMs  float64
	SameSchema  bool
	RecallRecur float64
	RecallPipe  float64
}

// StagedResult is the execution-strategy ablation.
type StagedResult struct {
	Options Options
	Rows    []StagedRow
}

// RunStaged measures both execution strategies at 50% training.
func RunStaged(o Options) (*StagedResult, error) {
	o = o.Defaults()
	gens, err := o.generators()
	if err != nil {
		return nil, err
	}
	res := &StagedResult{Options: o}
	for _, g := range gens {
		records := g.Generate(o.scaledN(g), o.Seed)
		train, test := split(records, 0.5, o.Seed+1000)
		trainTypes := dataset.Types(train)
		testTypes := dataset.Types(test)

		var recMs, pipeMs stats.Summary
		cfg := core.Default()
		var recS, pipeS = core.DiscoverTypes(trainTypes, cfg), core.PipelineTypes(trainTypes, cfg)
		for trial := 0; trial < o.Trials; trial++ {
			start := time.Now()
			recS = core.DiscoverTypes(trainTypes, cfg)
			recMs.Add(float64(time.Since(start).Microseconds()) / 1000)
			start = time.Now()
			pipeS = core.PipelineTypes(trainTypes, cfg)
			pipeMs.Add(float64(time.Since(start).Microseconds()) / 1000)
		}
		res.Rows = append(res.Rows, StagedRow{
			Dataset:     g.Name,
			RecursiveMs: recMs.Mean(),
			PipelineMs:  pipeMs.Mean(),
			SameSchema:  recS.Canon() == pipeS.Canon(),
			RecallRecur: metrics.Recall(recS, testTypes),
			RecallPipe:  metrics.Recall(pipeS, testTypes),
		})
	}
	return res, nil
}

func (r *StagedResult) table() *table {
	t := &table{
		title: "Ablation: recursive (§4.1) vs staged pipeline (Fig. 3) at 50% training",
		headers: []string{"dataset", "recursive ms", "pipeline ms",
			"identical schema", "recall (rec)", "recall (pipe)"},
	}
	for _, row := range r.Rows {
		same := "no"
		if row.SameSchema {
			same = "yes"
		}
		t.addRow(row.Dataset, f2(row.RecursiveMs), f2(row.PipelineMs),
			same, f5(row.RecallRecur), f5(row.RecallPipe))
	}
	return t
}

// Render draws the ASCII table.
func (r *StagedResult) Render() string { return r.table().Render() }

// CSV renders comma-separated values.
func (r *StagedResult) CSV() string { return r.table().CSV() }

// IterativeRow reports the §4.2 sampling loop for one dataset.
type IterativeRow struct {
	Dataset     string
	Rounds      int
	FinalSample int
	TotalN      int
	Converged   bool
	Recall      float64
}

// IterativeResult is the iterative-sampling experiment (§4.2).
type IterativeResult struct {
	Options Options
	Rows    []IterativeRow
}

// RunIterative seeds discovery with a 1% sample and applies the
// validate-and-augment loop, reporting how little data full coverage
// needs.
func RunIterative(o Options) (*IterativeResult, error) {
	o = o.Defaults()
	gens, err := o.generators()
	if err != nil {
		return nil, err
	}
	res := &IterativeResult{Options: o}
	for _, g := range gens {
		records := g.Generate(o.scaledN(g), o.Seed)
		train, test := split(records, 0.9, o.Seed+1000)
		trainTypes := dataset.Types(train)
		s, report := core.IterativeDiscover(trainTypes, core.Default(), 0.01, 10, o.Seed)
		res.Rows = append(res.Rows, IterativeRow{
			Dataset:     g.Name,
			Rounds:      report.Rounds,
			FinalSample: report.SampleSizes[len(report.SampleSizes)-1],
			TotalN:      len(trainTypes),
			Converged:   report.Converged,
			Recall:      metrics.Recall(s, dataset.Types(test)),
		})
	}
	return res, nil
}

func (r *IterativeResult) table() *table {
	t := &table{
		title: "§4.2: Iterative sampling — 1% seed + validate-and-augment loop",
		headers: []string{"dataset", "rounds", "final sample", "of records",
			"converged", "test recall"},
	}
	for _, row := range r.Rows {
		conv := "no"
		if row.Converged {
			conv = "yes"
		}
		t.addRow(row.Dataset, itoa(row.Rounds), itoa(row.FinalSample),
			itoa(row.TotalN), conv, f5(row.Recall))
	}
	return t
}

// Render draws the ASCII table.
func (r *IterativeResult) Render() string { return r.table().Render() }

// CSV renders comma-separated values.
func (r *IterativeResult) CSV() string { return r.table().CSV() }
