package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"jxplain/internal/core"
	"jxplain/internal/dataset"
	"jxplain/internal/jsontype"
	"jxplain/internal/schema"
	"jxplain/internal/stats"
)

// hotpathBaselinePath is where the frozen PR-1 measurement lives (relative
// to the repo root, which is where jxbench runs). When present, the
// hotpath table reports improvement ratios against it; when absent, the
// ratio columns are zero and the note records the omission.
const hotpathBaselinePath = "results/BENCH_hotpath_pr1.json"

// hotpathIters matches the baseline capture: each measurement is the mean
// of this many full pipeline executions.
const hotpathIters = 3

// HotpathRow is the hot-path measurement for one dataset. One op is
// DecodeAll over the dataset's JSONL bytes, the staged pipeline, and
// Simplify — the full ingest-to-schema path, so the interner's savings on
// per-record type construction are visible, not just synthesis time.
type HotpathRow struct {
	Dataset       string `json:"dataset"`
	Records       int    `json:"records"`
	DistinctTypes int    `json:"distinct_types"`
	InputBytes    int    `json:"input_bytes"`

	// Sequential run (SynthWorkers=0), directly comparable to the PR-1
	// baseline captured with the same op and iteration count.
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	PeakHeapBytes uint64  `json:"peak_heap_bytes"`

	// Parallel run (StatsWorkers and SynthWorkers = GOMAXPROCS). When the
	// parallel configuration degenerates to the sequential path — a
	// single-CPU box, or a dataset below core's parallel cutover — the row
	// reports the sequential measurement and sets ParSequential: the two
	// configs execute identical code there, and re-measuring it would
	// publish run-to-run jitter as a phantom parallel delta.
	ParNsPerOp    float64 `json:"par_ns_per_op"`
	ParSequential bool    `json:"par_sequential,omitempty"`

	// SchemasEqual confirms sequential and parallel synthesis produced the
	// byte-identical schema.
	SchemasEqual bool `json:"schemas_equal"`

	// Ratios against the PR-1 baseline (0 when no baseline file).
	BaselineNsPerOp     float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineAllocsPerOp float64 `json:"baseline_allocs_per_op,omitempty"`
	AllocReduction      float64 `json:"alloc_reduction,omitempty"` // baseline allocs / current allocs
	SpeedupSeq          float64 `json:"speedup_seq,omitempty"`     // baseline ns / sequential ns
	SpeedupPar          float64 `json:"speedup_par,omitempty"`     // baseline ns / parallel ns
}

// HotpathResult is the full hot-path benchmark (BENCH_hotpath.json).
type HotpathResult struct {
	Note    string       `json:"note"`
	Options Options      `json:"options"`
	Workers int          `json:"workers"`
	Rows    []HotpathRow `json:"rows"`
}

// RunHotpath measures the allocation-free hot path — interned types,
// bitset key sets, parallel synthesis — over the configured datasets and,
// when the committed PR-1 baseline is available, reports the improvement
// ratios.
func RunHotpath(o Options) (*HotpathResult, error) {
	o = o.Defaults()
	gens, err := o.generators()
	if err != nil {
		return nil, err
	}
	baseline := loadHotpathBaseline()
	workers := runtime.GOMAXPROCS(0)
	res := &HotpathResult{
		Note: fmt.Sprintf("hot path: DecodeAll + Pipeline + Simplify per op, n=DefaultN, seed=%d, %d iters; "+
			"par_sequential rows fell back to the sequential path (parallel cutover or single CPU)",
			o.Seed, hotpathIters),
		Options: o,
		Workers: workers,
	}
	if baseline == nil {
		res.Note += "; no PR-1 baseline file, ratio columns omitted"
	}
	for _, g := range gens {
		row, err := hotpathDataset(g, o, workers)
		if err != nil {
			return nil, err
		}
		if base, ok := baseline[g.Name]; ok {
			row.BaselineNsPerOp = base.NsPerOp
			row.BaselineAllocsPerOp = base.AllocsPerOp
			if row.AllocsPerOp > 0 {
				row.AllocReduction = base.AllocsPerOp / row.AllocsPerOp
			}
			if row.NsPerOp > 0 {
				row.SpeedupSeq = base.NsPerOp / row.NsPerOp
			}
			if row.ParNsPerOp > 0 {
				row.SpeedupPar = base.NsPerOp / row.ParNsPerOp
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func hotpathDataset(g *dataset.Generator, o Options, workers int) (HotpathRow, error) {
	records := g.Generate(o.scaledN(g), o.Seed)
	var input bytes.Buffer
	for _, rec := range records {
		data, err := json.Marshal(rec.Value)
		if err != nil {
			return HotpathRow{}, fmt.Errorf("hotpath: marshal %s: %w", g.Name, err)
		}
		input.Write(data)
		input.WriteByte('\n')
	}
	row := HotpathRow{
		Dataset:    g.Name,
		Records:    len(records),
		InputBytes: input.Len(),
	}

	seqCfg := core.Default()
	op := func(cfg core.Config) (schema.Schema, error) {
		types, err := jsontype.DecodeAll(bytes.NewReader(input.Bytes()))
		if err != nil {
			return nil, err
		}
		return schema.Simplify(core.PipelineTypes(types, cfg)), nil
	}

	// Record the distinct-type count once, outside the measured loops.
	{
		types, err := jsontype.DecodeAll(bytes.NewReader(input.Bytes()))
		if err != nil {
			return HotpathRow{}, fmt.Errorf("hotpath: decode %s: %w", g.Name, err)
		}
		row.DistinctTypes = jsontype.NewBag(types...).Distinct()
	}

	var seqSchema, parSchema schema.Schema
	var opErr error
	// One unmeasured op before each measured block: the first execution
	// pays one-time costs (interner growth, allocator warm-up) that
	// otherwise land entirely on whichever block runs first and show up
	// as a phantom seq/par delta.
	if _, err := op(seqCfg); err != nil {
		return HotpathRow{}, fmt.Errorf("hotpath: %s (warmup): %w", g.Name, err)
	}
	sampler := stats.StartMemSampler(0)
	row.NsPerOp, row.AllocsPerOp, row.BytesPerOp = measureOp(hotpathIters, func() {
		seqSchema, opErr = op(seqCfg)
	})
	row.PeakHeapBytes = sampler.Stop()
	if opErr != nil {
		return HotpathRow{}, fmt.Errorf("hotpath: %s: %w", g.Name, opErr)
	}

	if core.EffectiveWorkers(workers, row.DistinctTypes) <= 1 {
		row.ParNsPerOp = row.NsPerOp
		row.ParSequential = true
		row.SchemasEqual = true
		return row, nil
	}

	parCfg := seqCfg
	parCfg.StatsWorkers = workers
	parCfg.SynthWorkers = workers
	if _, err := op(parCfg); err != nil {
		return HotpathRow{}, fmt.Errorf("hotpath: %s (parallel warmup): %w", g.Name, err)
	}
	row.ParNsPerOp, _, _ = measureOp(hotpathIters, func() {
		parSchema, opErr = op(parCfg)
	})
	if opErr != nil {
		return HotpathRow{}, fmt.Errorf("hotpath: %s (parallel): %w", g.Name, opErr)
	}

	row.SchemasEqual = schema.Equal(seqSchema, parSchema)
	return row, nil
}

// measureOp runs fn iters times and returns mean wall time, heap
// allocations, and heap bytes per run (mallocs and bytes from the
// runtime's own counters, so goroutine allocations in parallel runs are
// included).
func measureOp(iters int, fn func()) (nsPerOp, allocsPerOp, bytesPerOp float64) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := float64(iters)
	return float64(elapsed.Nanoseconds()) / n,
		float64(after.Mallocs-before.Mallocs) / n,
		float64(after.TotalAlloc-before.TotalAlloc) / n
}

// hotpathBaseline mirrors the committed PR-1 measurement rows.
type hotpathBaseline struct {
	Rows []struct {
		Dataset     string  `json:"dataset"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
	} `json:"rows"`
}

func loadHotpathBaseline() map[string]struct{ NsPerOp, AllocsPerOp float64 } {
	data, err := os.ReadFile(hotpathBaselinePath)
	if err != nil {
		return nil
	}
	var b hotpathBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil
	}
	out := map[string]struct{ NsPerOp, AllocsPerOp float64 }{}
	for _, r := range b.Rows {
		out[r.Dataset] = struct{ NsPerOp, AllocsPerOp float64 }{r.NsPerOp, r.AllocsPerOp}
	}
	return out
}

func (r *HotpathResult) table() *table {
	t := &table{
		title: fmt.Sprintf("Hot path: interning + bitsets + parallel synthesis (%d workers)", r.Workers),
		headers: []string{"dataset", "records", "distinct", "ms/op", "par ms/op",
			"Mallocs/op", "peak MiB", "allocs ÷", "speedup", "par speedup", "equal"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Dataset,
			fmt.Sprintf("%d", row.Records),
			fmt.Sprintf("%d", row.DistinctTypes),
			fmt.Sprintf("%.1f", row.NsPerOp/1e6),
			fmt.Sprintf("%.1f", row.ParNsPerOp/1e6),
			fmt.Sprintf("%.2f", row.AllocsPerOp/1e6),
			fmt.Sprintf("%.1f", float64(row.PeakHeapBytes)/(1<<20)),
			fmt.Sprintf("%.2fx", row.AllocReduction),
			fmt.Sprintf("%.2fx", row.SpeedupSeq),
			fmt.Sprintf("%.2fx", row.SpeedupPar),
			fmt.Sprintf("%v", row.SchemasEqual))
	}
	return t
}

// Render draws the benchmark as an ASCII table.
func (r *HotpathResult) Render() string { return r.table().Render() }

// CSV renders the benchmark as CSV.
func (r *HotpathResult) CSV() string { return r.table().CSV() }

// JSON renders the full measurement for BENCH_hotpath.json.
func (r *HotpathResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
