package experiments

import (
	"testing"

	"jxplain/internal/dataset"
)

// TestFullRegistrySmoke runs the core table experiments over every dataset
// at tiny scale, catching generator/extractor regressions on datasets the
// focused tests skip. Guarded by -short.
func TestFullRegistrySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry smoke skipped in -short mode")
	}
	o := Options{
		Fractions: []float64{0.10},
		Trials:    1,
		Scale:     0.05,
		Seed:      2,
	}
	t1, err := RunTable1(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Datasets) != len(dataset.Names()) {
		t.Fatalf("table 1 covered %d datasets", len(t1.Datasets))
	}
	for _, ds := range t1.Datasets {
		cell := t1.Cells[ds][0.10]
		for _, alg := range []Algorithm{KReduce, BimaxMerge, BimaxNaive} {
			if cell[alg].Mean < 0 || cell[alg].Mean > 1 {
				t.Errorf("%s/%s: recall %v out of range", ds, alg, cell[alg].Mean)
			}
		}
	}

	t2, err := RunTable2(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range t2.Datasets {
		cell := t2.Cells[ds][0.10]
		for _, alg := range Algorithms {
			if cell[alg].Mean < 0 {
				t.Errorf("%s/%s: negative entropy %v", ds, alg, cell[alg].Mean)
			}
		}
	}

	t4, err := RunTable4(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) != len(dataset.Names()) {
		t.Fatalf("table 4 covered %d datasets", len(t4.Rows))
	}

	t5, err := RunTable5(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Datasets) != len(dataset.Names()) {
		t.Fatalf("table 5 covered %d datasets", len(t5.Datasets))
	}
}
