package experiments

import (
	"fmt"
	"strings"

	"jxplain/internal/core"
	"jxplain/internal/dataset"
	"jxplain/internal/entity"
	"jxplain/internal/jsontype"
	"jxplain/internal/stats"
)

// Figure4Result is the key-space entropy distribution (paper Figure 4):
// one point per complex-kinded path with self-similar nested elements,
// across the Yelp datasets. The paper's observation — and the reason the
// threshold choice is uncritical — is that the distribution is strongly
// bimodal: nearly every path has near-zero or clearly-high entropy.
type Figure4Result struct {
	Options   Options
	Histogram *stats.Histogram
	// Points lists (path, entropy) pairs for inspection.
	Points []Figure4Point
	// GrayZone counts points within ±0.4 nats of the threshold 1.
	GrayZone int
}

// Figure4Point is one complex-kinded self-similar path.
type Figure4Point struct {
	Dataset string
	Path    string
	Entropy float64
	Records int
}

// RunFigure4 collects key-space entropy for every complex-kinded
// self-similar path of the configured datasets (default: the Yelp family,
// as in the paper).
func RunFigure4(o Options) (*Figure4Result, error) {
	o = o.Defaults()
	if len(o.Datasets) == len(dataset.Names()) {
		o.Datasets = []string{
			"yelp-business", "yelp-checkin", "yelp-photos",
			"yelp-review", "yelp-tip", "yelp-user", "yelp-merged",
		}
	}
	gens, err := o.generators()
	if err != nil {
		return nil, err
	}
	res := &Figure4Result{
		Options:   o,
		Histogram: stats.NewHistogram(0, 8, 32),
	}
	for _, g := range gens {
		records := g.Generate(o.scaledN(g), o.Seed)
		bag := &jsontype.Bag{}
		for _, rec := range records {
			bag.Add(rec.Type)
		}
		for _, st := range core.CollectPathStats(bag, core.Default()) {
			if !st.Evidence.Similar || st.Evidence.Records < 2 {
				continue
			}
			e := st.Evidence.KeyEntropy
			res.Histogram.Add(e)
			res.Points = append(res.Points, Figure4Point{
				Dataset: g.Name, Path: st.Path, Entropy: e, Records: st.Evidence.Records,
			})
			if e > 0.6 && e < 1.4 {
				res.GrayZone++
			}
		}
	}
	return res, nil
}

// Render draws the histogram plus a summary line.
func (r *Figure4Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4: Key-space entropy across complex-kinded self-similar paths (nats)\n")
	b.WriteString(r.Histogram.Render(50))
	fmt.Fprintf(&b, "points: %d, within gray zone (0.6..1.4) of threshold 1: %d\n",
		len(r.Points), r.GrayZone)
	return b.String()
}

// CSV renders the raw points.
func (r *Figure4Result) CSV() string {
	t := &table{headers: []string{"dataset", "path", "entropy", "records"}}
	for _, p := range r.Points {
		t.addRow(p.Dataset, p.Path, f5(p.Entropy), itoa(p.Records))
	}
	return t.CSV()
}

// Figure5Row is the feature-vector storage cost for one configuration.
type Figure5Row struct {
	Dataset     string
	Encoding    entity.Encoding
	PruneNested bool
	Distinct    int
	Bytes       int
}

// Figure5Result is the feature-vector memory experiment (paper Figure 5):
// the §6.4 preprocessing cost with and without nested-collection feature
// pruning, under sparse and dense encodings. On Yelp the pruning removes
// the checkin pivot's day/hour keys; on Pharma it removes nearly all
// structure (the paper: "reduces memory requirements to nearly nothing").
type Figure5Result struct {
	Options Options
	Rows    []Figure5Row
}

// RunFigure5 measures feature-vector memory for the configured datasets
// (default: yelp-merged and pharma, the paper's two exemplars).
func RunFigure5(o Options) (*Figure5Result, error) {
	o = o.Defaults()
	if len(o.Datasets) == len(dataset.Names()) {
		o.Datasets = []string{"yelp-merged", "pharma"}
	}
	gens, err := o.generators()
	if err != nil {
		return nil, err
	}
	res := &Figure5Result{Options: o}
	for _, g := range gens {
		records := g.Generate(o.scaledN(g), o.Seed)
		bag := &jsontype.Bag{}
		for _, rec := range records {
			bag.Add(rec.Type)
		}
		for _, enc := range []entity.Encoding{entity.Sparse, entity.Dense} {
			for _, prune := range []bool{false, true} {
				fs := core.BuildFeatureSet(bag, core.Default(), prune, enc)
				res.Rows = append(res.Rows, Figure5Row{
					Dataset:     g.Name,
					Encoding:    enc,
					PruneNested: prune,
					Distinct:    fs.Distinct(),
					Bytes:       fs.MemoryBytes(),
				})
			}
		}
	}
	return res, nil
}

func (r *Figure5Result) table() *table {
	t := &table{
		title:   "Figure 5: Feature-vector memory by encoding and nested-collection pruning",
		headers: []string{"dataset", "encoding", "prune-nested", "distinct vectors", "bytes"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Dataset, row.Encoding.String(),
			fmt.Sprintf("%v", row.PruneNested), itoa(row.Distinct), itoa(row.Bytes))
	}
	return t
}

// Render draws the ASCII table.
func (r *Figure5Result) Render() string { return r.table().Render() }

// CSV renders comma-separated values.
func (r *Figure5Result) CSV() string { return r.table().CSV() }
