package experiments

import (
	"jxplain/internal/dataset"
	"jxplain/internal/schema"
)

// DescribeRow summarizes one algorithm's schema shape for one dataset.
type DescribeRow struct {
	Dataset   string
	Algorithm Algorithm
	Stats     schema.Stats
}

// DescribeResult is the description-size experiment: §2's third quality
// axis — besides precision and recall, a discovered schema should be a
// *concise description*. It contrasts the verbose optional-field unions of
// K-/L-reduction with JXPLAIN's collection and entity structure.
type DescribeResult struct {
	Options Options
	Rows    []DescribeRow
}

// RunDescribe measures schema statistics at 90% training for all four
// algorithms.
func RunDescribe(o Options) (*DescribeResult, error) {
	o = o.Defaults()
	gens, err := o.generators()
	if err != nil {
		return nil, err
	}
	res := &DescribeResult{Options: o}
	for _, g := range gens {
		records := g.Generate(o.scaledN(g), o.Seed)
		train, _ := split(records, 0.9, o.Seed+1000)
		trainTypes := dataset.Types(train)
		for _, alg := range Algorithms {
			s := Discover(alg, trainTypes)
			res.Rows = append(res.Rows, DescribeRow{
				Dataset:   g.Name,
				Algorithm: alg,
				Stats:     schema.Describe(s),
			})
		}
	}
	return res, nil
}

func (r *DescribeResult) table() *table {
	t := &table{
		title: "Description size: schema shape at 90% training",
		headers: []string{"dataset", "algorithm", "nodes", "entities",
			"collections", "req fields", "opt fields", "depth", "desc bytes"},
	}
	for _, row := range r.Rows {
		st := row.Stats
		t.addRow(row.Dataset, string(row.Algorithm),
			itoa(st.Nodes), itoa(st.Entities), itoa(st.Collections),
			itoa(st.RequiredFields), itoa(st.OptionalFields),
			itoa(st.Depth), itoa(st.DescriptionLength))
	}
	return t
}

// Render draws the ASCII table.
func (r *DescribeResult) Render() string { return r.table().Render() }

// CSV renders comma-separated values.
func (r *DescribeResult) CSV() string { return r.table().CSV() }
