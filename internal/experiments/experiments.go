// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 7) over the synthetic datasets:
//
//	Table 1  — recall of the generated schema on a held-out test set
//	Table 2  — schema entropy (log2 admitted types)
//	Table 3  — entity-detection accuracy vs. ground truth (sym. difference)
//	Table 4  — entity-count conciseness (Bimax-Naive vs. Bimax-Merge)
//	Table 5  — extraction runtime
//	Figure 4 — key-space entropy distribution across paths
//	Figure 5 — feature-vector memory (pruning and encoding)
//	§7.5     — schema edits to full recall
//	ablations — threshold sensitivity, staged vs. recursive execution,
//	            iterative sampling
//
// Each runner is deterministic for a given Options.Seed and returns a
// result value with Render (ASCII table) and CSV methods, shared by
// cmd/jxbench and the bench_test.go harness.
package experiments

import (
	"fmt"
	"math/rand"

	"jxplain/internal/core"
	"jxplain/internal/dataset"
	"jxplain/internal/jsontype"
	"jxplain/internal/merge"
	"jxplain/internal/schema"
)

// Algorithm names one of the four compared extractors.
type Algorithm string

// The four extractors of the evaluation.
const (
	KReduce    Algorithm = "k-reduce"
	BimaxMerge Algorithm = "bimax-merge"
	BimaxNaive Algorithm = "bimax-naive"
	LReduce    Algorithm = "l-reduce"
)

// Algorithms is the comparison order of the paper's tables.
var Algorithms = []Algorithm{KReduce, BimaxMerge, BimaxNaive, LReduce}

// Discover runs the named extractor over the training types.
// K-reduce runs as the distributed fold (its selling point); the JXPLAIN
// variants run as the staged pipeline (Figure 3); L-reduce is the naive
// set-of-types baseline. Outputs are simplified (the union-redundancy
// post-processing applied to all systems in §7).
func Discover(alg Algorithm, types []*jsontype.Type) schema.Schema {
	switch alg {
	case KReduce:
		return schema.Simplify(merge.FoldK(types, 0))
	case LReduce:
		bag := &jsontype.Bag{}
		for _, t := range types {
			bag.Add(t)
		}
		return schema.Simplify(merge.Naive(bag))
	case BimaxNaive:
		return schema.Simplify(core.PipelineTypes(types, core.BimaxNaiveConfig()))
	case BimaxMerge:
		return schema.Simplify(core.PipelineTypes(types, core.Default()))
	}
	panic("experiments: unknown algorithm " + string(alg))
}

// Options configures an experiment run.
type Options struct {
	// Datasets restricts the run (nil = the full registry).
	Datasets []string
	// Fractions are the training fractions (default 1%, 10%, 50%, 90%).
	Fractions []float64
	// Trials is the number of repetitions (default 5, as in the paper).
	Trials int
	// Scale multiplies each dataset's DefaultN (default 1).
	Scale float64
	// Seed drives sampling and generation.
	Seed int64
}

// Defaults fills unset fields.
func (o Options) Defaults() Options {
	if len(o.Fractions) == 0 {
		o.Fractions = []float64{0.01, 0.10, 0.50, 0.90}
	}
	if o.Trials <= 0 {
		o.Trials = 5
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if len(o.Datasets) == 0 {
		o.Datasets = dataset.Names()
	}
	return o
}

// generators resolves the configured dataset names.
func (o Options) generators() ([]*dataset.Generator, error) {
	var out []*dataset.Generator
	for _, name := range o.Datasets {
		g, ok := dataset.ByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown dataset %q", name)
		}
		out = append(out, g)
	}
	return out, nil
}

// split draws one trial's train/test split: 10% of the records are held
// out for testing; the training set is a uniform `fraction` sample of the
// data (as in §7: fractions are of the whole dataset, sampled from the
// non-test remainder).
func split(records []dataset.Record, fraction float64, seed int64) (train, test []dataset.Record) {
	r := rand.New(rand.NewSource(seed))
	perm := r.Perm(len(records))
	nTest := len(records) / 10
	nTrain := int(fraction * float64(len(records)))
	if nTrain < 1 {
		nTrain = 1
	}
	if nTrain > len(records)-nTest {
		nTrain = len(records) - nTest
	}
	test = make([]dataset.Record, 0, nTest)
	train = make([]dataset.Record, 0, nTrain)
	for _, idx := range perm[:nTest] {
		test = append(test, records[idx])
	}
	for _, idx := range perm[nTest : nTest+nTrain] {
		train = append(train, records[idx])
	}
	return train, test
}

// scaledN returns the record count for a generator under the options.
func (o Options) scaledN(g *dataset.Generator) int {
	n := int(float64(g.DefaultN) * o.Scale)
	if n < 20 {
		n = 20
	}
	return n
}
