package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"time"

	"jxplain/internal/dataset"
	"jxplain/internal/entity"
)

// entityRecordScales are the record-count multipliers of the scaling grid:
// each wide dataset is measured at its default size and at 4× it, so the
// table separates the two growth axes — distinct key sets (across
// datasets) and records per distinct set (across multipliers).
var entityRecordScales = []int{1, 4}

// EntityRow is one cell of the entity-discovery scaling grid.
type EntityRow struct {
	Dataset      string  `json:"dataset"`
	Records      int     `json:"records"`
	DistinctSets int     `json:"distinct_sets"`
	DedupFactor  float64 `json:"dedup_factor"` // records / distinct sets

	// NaiveNs is the quadratic reference pipeline (size-sorted Bimax with
	// full-window rescans, GreedyMerge with per-step cover rescans) over
	// the distinct key sets — the pre-index behavior of this codebase.
	NaiveNs float64 `json:"naive_ns"`
	// IndexedNs is the posting-index pipeline over the same weighted sets.
	IndexedNs float64 `json:"indexed_ns"`
	// Speedup is NaiveNs / IndexedNs.
	Speedup float64 `json:"speedup"`

	// TransposeNs and TransposeParNs measure the column transpose used by
	// BimaxColumns, serial vs striped-parallel.
	TransposeNs    float64 `json:"transpose_ns"`
	TransposeParNs float64 `json:"transpose_par_ns"`

	// Clusters is the entity count after GreedyMerge; ClustersEqual
	// confirms the reference and indexed pipelines emitted identical
	// clusterings; WeightsOK confirms cluster weights add up to the
	// record count.
	Clusters      int  `json:"clusters"`
	ClustersEqual bool `json:"clusters_equal"`
	WeightsOK     bool `json:"weights_ok"`
}

// EntityBenchResult is the entity-discovery scaling benchmark
// (BENCH_entity.json).
type EntityBenchResult struct {
	Note    string      `json:"note"`
	Options Options     `json:"options"`
	Workers int         `json:"workers"`
	Rows    []EntityRow `json:"rows"`
}

// RunEntityBench measures weighted, posting-index entity discovery against
// the quadratic reference over the wide synthetic datasets. With no
// explicit -datasets, the grid runs the wide scaling family rather than
// the paper registry: the paper datasets top out at a few thousand
// distinct key sets, too small to separate the asymptotics.
func RunEntityBench(o Options) (*EntityBenchResult, error) {
	if len(o.Datasets) == 0 {
		for _, g := range dataset.WideRegistry() {
			o.Datasets = append(o.Datasets, g.Name)
		}
	}
	o = o.Defaults()
	gens, err := o.generators()
	if err != nil {
		return nil, err
	}
	res := &EntityBenchResult{
		Note: fmt.Sprintf("entity stage: weighted dedup + Bimax + GreedyMerge per op, seed=%d, min of %d trials",
			o.Seed, o.Trials),
		Options: o,
		Workers: runtime.GOMAXPROCS(0),
	}
	for _, g := range gens {
		for _, mult := range entityRecordScales {
			row, err := entityBenchCell(g, o, mult)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func entityBenchCell(g *dataset.Generator, o Options, mult int) (EntityRow, error) {
	n := o.scaledN(g) * mult
	records := g.Generate(n, o.Seed)

	dict := entity.NewDict()
	sets := make([]entity.KeySet, 0, len(records))
	for _, rec := range records {
		obj, ok := rec.Value.(map[string]any)
		if !ok {
			return EntityRow{}, fmt.Errorf("entity bench: %s emits non-object records", g.Name)
		}
		names := make([]string, 0, len(obj))
		for k := range obj {
			names = append(names, k)
		}
		sort.Strings(names)
		sets = append(sets, entity.KeySetOf(dict, names...))
	}
	w, _ := entity.DedupKeySets(sets)

	row := EntityRow{
		Dataset:      g.Name,
		Records:      len(sets),
		DistinctSets: len(w.Sets),
		DedupFactor:  float64(len(sets)) / float64(len(w.Sets)),
	}

	var refClusters, ixClusters []entity.Cluster
	row.NaiveNs = minDuration(o.Trials, func() {
		refClusters = entity.GreedyMergeRef(entity.BimaxNaiveRef(w.Sets))
	})
	row.IndexedNs = minDuration(o.Trials, func() {
		ixClusters = entity.DiscoverEntities(w, true)
	})
	if row.IndexedNs > 0 {
		row.Speedup = row.NaiveNs / row.IndexedNs
	}

	row.Clusters = len(ixClusters)
	row.ClustersEqual = clusteringsEqual(refClusters, ixClusters)
	total := 0
	for _, c := range ixClusters {
		total += c.Weight
	}
	row.WeightsOK = total == len(sets)

	dim := dict.Len()
	var serialCols, parCols []entity.KeySet
	row.TransposeNs = minDuration(o.Trials, func() {
		serialCols = entity.Transpose(w.Sets, dim)
	})
	row.TransposeParNs = minDuration(o.Trials, func() {
		parCols = entity.TransposeParallel(w.Sets, dim, runtime.GOMAXPROCS(0))
	})
	if len(serialCols) != len(parCols) {
		row.ClustersEqual = false
	} else {
		for c := range serialCols {
			if !serialCols[c].Equal(parCols[c]) {
				row.ClustersEqual = false
				break
			}
		}
	}
	return row, nil
}

// clusteringsEqual compares cluster structure (Max and Members, in
// order). Weights are excluded: the reference run is unweighted, so its
// Weight field counts member sets, not records.
func clusteringsEqual(a, b []entity.Cluster) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Max.Equal(b[i].Max) || len(a[i].Members) != len(b[i].Members) {
			return false
		}
		for j := range a[i].Members {
			if a[i].Members[j] != b[i].Members[j] {
				return false
			}
		}
	}
	return true
}

// minDuration runs fn trials times and returns the fastest wall time in
// nanoseconds — the standard noise floor for a deterministic op.
func minDuration(trials int, fn func()) float64 {
	best := 0.0
	for t := 0; t < trials; t++ {
		start := time.Now()
		fn()
		ns := float64(time.Since(start).Nanoseconds())
		if t == 0 || ns < best {
			best = ns
		}
	}
	return best
}

func (r *EntityBenchResult) table() *table {
	t := &table{
		title: "Entity discovery scaling: weighted dedup + posting-index Bimax/GreedyMerge",
		headers: []string{"dataset", "records", "distinct", "dedup",
			"naive ms", "indexed ms", "speedup", "transpose µs", "par µs", "clusters", "equal"},
	}
	for _, row := range r.Rows {
		t.addRow(row.Dataset,
			fmt.Sprintf("%d", row.Records),
			fmt.Sprintf("%d", row.DistinctSets),
			fmt.Sprintf("%.1fx", row.DedupFactor),
			fmt.Sprintf("%.1f", row.NaiveNs/1e6),
			fmt.Sprintf("%.1f", row.IndexedNs/1e6),
			fmt.Sprintf("%.1fx", row.Speedup),
			fmt.Sprintf("%.0f", row.TransposeNs/1e3),
			fmt.Sprintf("%.0f", row.TransposeParNs/1e3),
			fmt.Sprintf("%d", row.Clusters),
			fmt.Sprintf("%v", row.ClustersEqual && row.WeightsOK))
	}
	return t
}

// Render draws the benchmark as an ASCII table.
func (r *EntityBenchResult) Render() string { return r.table().Render() }

// CSV renders the benchmark as CSV.
func (r *EntityBenchResult) CSV() string { return r.table().CSV() }

// JSON renders the full measurement for BENCH_entity.json.
func (r *EntityBenchResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
