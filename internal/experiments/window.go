package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"jxplain/internal/core"
	"jxplain/internal/dataset"
	"jxplain/internal/ingest"
	"jxplain/internal/jsontype"
	"jxplain/internal/schema"
	"jxplain/internal/stats"
)

// The bounded-stream benchmark answers the sublinear-memory claim in two
// parts. The scaling grid drives a churn stream — every record carries a
// never-repeating key, so *distinct structure* grows with the record
// count — at 1×, 2×, 5× and 10× the configured memory budget, exact vs
// bounded (reservoir + window ring + decay), and asserts the bounded
// state stays flat while the exact state grows. The tolerance grid reruns
// every synthetic dataset both ways and measures how far the bounded
// pass-① decisions and entity counts drift from the exact batch.
//
// Flatness is asserted on the deterministic state counters (trie nodes,
// reservoir occupancy), which hold at any -scale; the sampled peak-heap
// ratios are asserted only at -scale ≥ 1, where they dominate GC noise.
// The global type interner is append-only by design and grows with every
// distinct record type in either mode; the grid reports its growth per
// run (interned_delta) rather than pretending it away — see DESIGN.md
// "Unbounded streams".
const (
	// windowBudgetRecords is the 1× stream length at -scale 1; the ring
	// horizon below is sized to exactly cover it.
	windowBudgetRecords = 4000
	// windowCapacity bounds the reservoir of distinct types.
	windowCapacity = 64
	// windowRingWidth is the number of retained closed windows; the
	// cadence is budget/width so horizon = budget records.
	windowRingWidth = 4
	// windowDecay ages retained counters at every rotation.
	windowDecay = 0.5
	// windowFlatFactor caps bounded trie-node growth between the smallest
	// and largest scale — the hard flat-state check.
	windowFlatFactor = 1.5
	// windowGrowFactor is the minimum exact-over-bounded trie-node ratio
	// at the top scale — the check that the stream actually stresses the
	// exact path.
	windowGrowFactor = 4.0
	// windowHeapSlopeShare caps the bounded mode's marginal peak-heap
	// growth (1× → 10×) as a fraction of the exact mode's. The absolute
	// watermark cannot be flat — the append-only global type interner
	// grows with every distinct record type in either mode and HeapAlloc
	// counts it — but the interner term is common to both modes, so the
	// bounded slope staying well under the exact slope is the honest
	// sampled-heap form of the flat-state claim. Sampled; asserted at
	// -scale ≥ 1 only.
	windowHeapSlopeShare = 0.6
	// windowAgreementFloor is the minimum mean pass-① decision agreement
	// between bounded and exact runs across the datasets.
	windowAgreementFloor = 0.80
)

// windowScales are the stream lengths of the grid, in memory budgets.
var windowScales = []int{1, 2, 5, 10}

// WindowScaleRow is one churn-stream measurement: the same stream length,
// exact vs bounded.
type WindowScaleRow struct {
	// ScaleX is the stream length in memory budgets (records / horizon).
	ScaleX  int `json:"scale_x"`
	Records int `json:"records"`

	ExactMillis      float64 `json:"exact_ms"`
	ExactPeakHeap    uint64  `json:"exact_peak_heap_bytes"`
	ExactSketchNodes int     `json:"exact_sketch_nodes"`
	ExactDistinct    int     `json:"exact_distinct_types"`

	BoundedMillis      float64 `json:"bounded_ms"`
	BoundedPeakHeap    uint64  `json:"bounded_peak_heap_bytes"`
	BoundedSketchNodes int     `json:"bounded_sketch_nodes"`
	BoundedRetained    int     `json:"bounded_retained_types"`
	BoundedEvictions   int     `json:"bounded_evictions"`
	BoundedWindows     int     `json:"bounded_windows_closed"`

	// InternedDelta is the growth of the append-only global type interner
	// over this row's two runs — the unbounded term both modes share.
	InternedDelta uint64 `json:"interned_delta"`
	// NodeRatio is exact trie nodes over bounded trie nodes.
	NodeRatio float64 `json:"node_ratio"`
	// PeakHeapRatio is exact peak heap over bounded peak heap.
	PeakHeapRatio float64 `json:"peak_heap_ratio"`
}

// WindowToleranceRow compares bounded against exact discovery on one
// synthetic dataset.
type WindowToleranceRow struct {
	Dataset string `json:"dataset"`
	Records int    `json:"records"`
	// SharedPaths counts pass-① stats paths present in both runs;
	// AgreeingPaths of them carry the same tuple/collection decision.
	SharedPaths   int     `json:"shared_paths"`
	AgreeingPaths int     `json:"agreeing_paths"`
	Agreement     float64 `json:"agreement"`
	// Paths present in only one run (appeared under churned horizons or
	// below a flipped decision).
	OnlyExact   int `json:"paths_only_exact"`
	OnlyBounded int `json:"paths_only_bounded"`

	ExactEntities   int  `json:"exact_entities"`
	BoundedEntities int  `json:"bounded_entities"`
	SchemasEqual    bool `json:"schemas_equal"`
}

// WindowBenchResult is the full bounded-stream measurement.
type WindowBenchResult struct {
	Options       Options `json:"options"`
	Capacity      int     `json:"capacity"`
	WindowRecords int     `json:"window_records"`
	WindowCount   int     `json:"window_count"`
	Decay         float64 `json:"decay"`

	Scales []WindowScaleRow `json:"scales"`
	// FlatNodeRatio is bounded trie nodes at the top scale over the
	// bottom scale (≈1 means flat state across a 10× longer stream).
	FlatNodeRatio float64 `json:"flat_node_ratio"`
	// FlatHeapRatio is the same ratio on sampled peak heap. Unlike the
	// node ratio it includes the append-only interner, which grows in
	// both modes.
	FlatHeapRatio float64 `json:"flat_heap_ratio"`
	// HeapSlopeShare is the bounded mode's marginal peak-heap growth
	// (top scale minus bottom scale) as a fraction of the exact mode's.
	HeapSlopeShare float64 `json:"heap_slope_share"`

	Tolerance     []WindowToleranceRow `json:"tolerance"`
	MeanAgreement float64              `json:"mean_agreement"`
}

// RunWindowBench measures bounded-stream discovery: the churn scaling
// grid and the per-dataset decision tolerance. Violations of the flat-
// state and agreement checks are errors, not table footnotes.
func RunWindowBench(o Options) (*WindowBenchResult, error) {
	o = o.Defaults()
	gens, err := o.generators()
	if err != nil {
		return nil, err
	}

	budget := int(float64(windowBudgetRecords) * o.Scale)
	if budget < windowRingWidth*8 {
		budget = windowRingWidth * 8
	}
	bounds := core.Bounds{
		ReservoirCapacity: windowCapacity,
		WindowRecords:     budget / windowRingWidth,
		WindowCount:       windowRingWidth,
		DecayFactor:       windowDecay,
	}
	res := &WindowBenchResult{
		Options:       o,
		Capacity:      bounds.ReservoirCapacity,
		WindowRecords: bounds.WindowRecords,
		WindowCount:   bounds.WindowCount,
		Decay:         bounds.DecayFactor,
	}

	for _, scale := range windowScales {
		row, err := windowScaleRun(scale, scale*budget, bounds)
		if err != nil {
			return nil, err
		}
		res.Scales = append(res.Scales, row)
	}
	first, last := res.Scales[0], res.Scales[len(res.Scales)-1]
	if first.BoundedSketchNodes > 0 {
		res.FlatNodeRatio = float64(last.BoundedSketchNodes) / float64(first.BoundedSketchNodes)
	}
	if first.BoundedPeakHeap > 0 {
		res.FlatHeapRatio = float64(last.BoundedPeakHeap) / float64(first.BoundedPeakHeap)
	}

	// Hard checks. The state counters are deterministic at every scale;
	// the sampled heap ratio is asserted only at full scale.
	if res.FlatNodeRatio > windowFlatFactor {
		return nil, fmt.Errorf("window bench: bounded trie grew %.2f× from %d× to %d× budget (flat ceiling %.2f×)",
			res.FlatNodeRatio, first.ScaleX, last.ScaleX, windowFlatFactor)
	}
	for _, row := range res.Scales {
		if row.BoundedRetained > windowCapacity {
			return nil, fmt.Errorf("window bench: reservoir retained %d types over capacity %d at %d× budget",
				row.BoundedRetained, windowCapacity, row.ScaleX)
		}
	}
	if last.NodeRatio < windowGrowFactor {
		return nil, fmt.Errorf("window bench: exact trie only %.2f× the bounded trie at %d× budget (want ≥%.1f×: the churn stream is not stressing exact state)",
			last.NodeRatio, last.ScaleX, windowGrowFactor)
	}
	exactSlope := float64(last.ExactPeakHeap) - float64(first.ExactPeakHeap)
	boundedSlope := float64(last.BoundedPeakHeap) - float64(first.BoundedPeakHeap)
	if exactSlope > 0 {
		res.HeapSlopeShare = boundedSlope / exactSlope
	}
	if o.Scale >= 1 && exactSlope > 0 && res.HeapSlopeShare > windowHeapSlopeShare {
		return nil, fmt.Errorf("window bench: bounded marginal peak heap is %.2f of exact from %d× to %d× budget (ceiling %.2f)",
			res.HeapSlopeShare, first.ScaleX, last.ScaleX, windowHeapSlopeShare)
	}

	var agreementSum float64
	for _, g := range gens {
		row, err := windowToleranceRun(g, o, bounds)
		if err != nil {
			return nil, err
		}
		res.Tolerance = append(res.Tolerance, row)
		agreementSum += row.Agreement
	}
	if len(res.Tolerance) > 0 {
		res.MeanAgreement = agreementSum / float64(len(res.Tolerance))
	}
	if res.MeanAgreement < windowAgreementFloor {
		return nil, fmt.Errorf("window bench: mean bounded-vs-exact decision agreement %.3f below floor %.2f",
			res.MeanAgreement, windowAgreementFloor)
	}
	return res, nil
}

// churnReader synthesizes the churn stream lazily, so the measured heap
// holds accumulator state rather than a materialized input buffer — the
// shape of a truly unbounded stream. Every record pairs a stable "service"
// tuple with a never-repeating session key whose value is structurally
// constant: distinct root types (and stats-trie keys) grow linearly with
// the record count while the interner absorbs the deep subtrees once.
type churnReader struct {
	i, n int
	buf  []byte
}

func newChurnReader(n int) *churnReader { return &churnReader{n: n} }

func (c *churnReader) Read(p []byte) (int, error) {
	for len(c.buf) < len(p) && c.i < c.n {
		c.buf = append(c.buf, churnRecord(c.i)...)
		c.i++
	}
	if len(c.buf) == 0 {
		return 0, io.EOF
	}
	n := copy(p, c.buf)
	c.buf = c.buf[:copy(c.buf, c.buf[n:])]
	return n, nil
}

// churnRecord renders record i of the churn stream as one JSONL line.
func churnRecord(i int) []byte {
	return []byte(fmt.Sprintf(
		`{"service":{"region":"eu-1","build":%d,"flags":[true,false],"limits":{"cpu":1.5,"mem":4.0}},`+
			`"sess_%08d":{"hits":%d,"geo":[%d.0,2.0],"tags":{"env":"prod"}}}`+"\n",
		i%7, i, i%100, i%90))
}

// windowRunStats is one measured ingestion pass over the churn stream.
type windowRunStats struct {
	millis   float64
	peakHeap uint64
	nodes    int
	acc      *core.Accumulator
}

func windowChurnRun(n int, cfg core.Config) (windowRunStats, error) {
	runtime.GC() // a common baseline so earlier runs' garbage is not charged here
	sampler := stats.StartMemSampler(0)
	start := time.Now()
	acc := core.NewAccumulator(cfg)
	_, err := ingest.Each(context.Background(), newChurnReader(n),
		ingest.Options{JSONL: true, ChunkSize: 64}, func(c ingest.Chunk) error {
			acc.AddBag(c.Bag)
			return nil
		})
	if err != nil {
		return windowRunStats{}, fmt.Errorf("window bench: ingest: %w", err)
	}
	millis := float64(time.Since(start).Microseconds()) / 1000.0
	peak := sampler.Stop()
	return windowRunStats{millis: millis, peakHeap: peak, nodes: acc.SketchNodes(), acc: acc}, nil
}

func windowScaleRun(scale, n int, bounds core.Bounds) (WindowScaleRow, error) {
	row := WindowScaleRow{ScaleX: scale, Records: n}
	internedBefore := jsontype.InternedTypes()

	// Bounded first, per the streaming-bench convention: the exact run's
	// larger garbage must not inflate the bounded watermark.
	boundedCfg := core.Default()
	boundedCfg.Bounds = bounds
	bounded, err := windowChurnRun(n, boundedCfg)
	if err != nil {
		return WindowScaleRow{}, err
	}
	row.BoundedMillis = bounded.millis
	row.BoundedPeakHeap = bounded.peakHeap
	row.BoundedSketchNodes = bounded.nodes
	row.BoundedWindows = bounded.acc.WindowsClosed()
	r := bounded.acc.Reservoir()
	row.BoundedRetained = r.Distinct()
	row.BoundedEvictions = r.Evictions()

	exact, err := windowChurnRun(n, core.Default())
	if err != nil {
		return WindowScaleRow{}, err
	}
	row.ExactMillis = exact.millis
	row.ExactPeakHeap = exact.peakHeap
	row.ExactSketchNodes = exact.nodes
	row.ExactDistinct = exact.acc.Distinct()

	row.InternedDelta = jsontype.InternedTypes() - internedBefore
	if row.BoundedSketchNodes > 0 {
		row.NodeRatio = float64(row.ExactSketchNodes) / float64(row.BoundedSketchNodes)
	}
	if row.BoundedPeakHeap > 0 {
		row.PeakHeapRatio = float64(row.ExactPeakHeap) / float64(row.BoundedPeakHeap)
	}
	return row, nil
}

func windowToleranceRun(g *dataset.Generator, o Options, bounds core.Bounds) (WindowToleranceRow, error) {
	records := g.Generate(o.scaledN(g), o.Seed)
	types := dataset.Types(records)
	row := WindowToleranceRow{Dataset: g.Name, Records: len(types)}

	// The ring cadence tracks the dataset so the horizon spans roughly
	// half the stream: decisions come from recent windows, entity
	// discovery from the reservoir.
	dsBounds := bounds
	dsBounds.WindowRecords = len(types) / (2 * bounds.WindowCount)
	if dsBounds.WindowRecords < 1 {
		dsBounds.WindowRecords = 1
	}

	exactCfg := core.Default()
	exactAcc := core.NewAccumulator(exactCfg)
	boundedCfg := core.Default()
	boundedCfg.Bounds = dsBounds
	boundedAcc := core.NewAccumulator(boundedCfg)
	for _, t := range types {
		exactAcc.Add(t)
		boundedAcc.Add(t)
	}

	exactDecisions := decisionMap(exactAcc.Stats())
	boundedDecisions := decisionMap(boundedAcc.Stats())
	for key, d := range exactDecisions {
		bd, ok := boundedDecisions[key]
		if !ok {
			row.OnlyExact++
			continue
		}
		row.SharedPaths++
		if d == bd {
			row.AgreeingPaths++
		}
	}
	for key := range boundedDecisions {
		if _, ok := exactDecisions[key]; !ok {
			row.OnlyBounded++
		}
	}
	if row.SharedPaths > 0 {
		row.Agreement = float64(row.AgreeingPaths) / float64(row.SharedPaths)
	} else {
		row.Agreement = 1
	}

	exactSchema := schema.Simplify(exactAcc.Finish())
	boundedSchema := schema.Simplify(boundedAcc.Finish())
	row.ExactEntities = schema.Entities(exactSchema)
	row.BoundedEntities = schema.Entities(boundedSchema)
	row.SchemasEqual = schema.Equal(exactSchema, boundedSchema)
	return row, nil
}

// decisionMap keys each pass-① decision by kind-qualified path.
func decisionMap(sts []core.PathStat) map[string]string {
	m := make(map[string]string, len(sts))
	for _, st := range sts {
		m[st.Kind.String()+":"+st.Path] = st.Decision.String()
	}
	return m
}

func (r *WindowBenchResult) scaleTable() *table {
	t := &table{
		title: fmt.Sprintf("Bounded streams: churn at N× budget (budget %d records, capacity %d, ring %d×%d, decay %.2f)",
			r.WindowRecords*r.WindowCount, r.Capacity, r.WindowCount, r.WindowRecords, r.Decay),
		headers: []string{"scale", "records", "exact nodes", "bounded nodes", "node ratio",
			"exact MiB", "bounded MiB", "heap ratio", "retained", "evictions", "windows", "interned Δ"},
	}
	for _, row := range r.Scales {
		t.addRow(fmt.Sprintf("%d×", row.ScaleX),
			fmt.Sprintf("%d", row.Records),
			fmt.Sprintf("%d", row.ExactSketchNodes),
			fmt.Sprintf("%d", row.BoundedSketchNodes),
			fmt.Sprintf("%.1fx", row.NodeRatio),
			fmt.Sprintf("%.1f", float64(row.ExactPeakHeap)/(1<<20)),
			fmt.Sprintf("%.1f", float64(row.BoundedPeakHeap)/(1<<20)),
			fmt.Sprintf("%.2fx", row.PeakHeapRatio),
			fmt.Sprintf("%d", row.BoundedRetained),
			fmt.Sprintf("%d", row.BoundedEvictions),
			fmt.Sprintf("%d", row.BoundedWindows),
			fmt.Sprintf("%d", row.InternedDelta))
	}
	return t
}

func (r *WindowBenchResult) toleranceTable() *table {
	t := &table{
		title: fmt.Sprintf("Bounded vs exact decisions per dataset (mean agreement %.3f)",
			r.MeanAgreement),
		headers: []string{"dataset", "records", "shared", "agree", "agreement",
			"only exact", "only bounded", "entities exact", "entities bounded", "equal"},
	}
	for _, row := range r.Tolerance {
		t.addRow(row.Dataset,
			fmt.Sprintf("%d", row.Records),
			fmt.Sprintf("%d", row.SharedPaths),
			fmt.Sprintf("%d", row.AgreeingPaths),
			fmt.Sprintf("%.3f", row.Agreement),
			fmt.Sprintf("%d", row.OnlyExact),
			fmt.Sprintf("%d", row.OnlyBounded),
			fmt.Sprintf("%d", row.ExactEntities),
			fmt.Sprintf("%d", row.BoundedEntities),
			fmt.Sprintf("%v", row.SchemasEqual))
	}
	return t
}

// Render draws both grids as ASCII tables.
func (r *WindowBenchResult) Render() string {
	return r.scaleTable().Render() + "\n" + r.toleranceTable().Render()
}

// CSV renders both grids as CSV blocks.
func (r *WindowBenchResult) CSV() string {
	return r.scaleTable().CSV() + "\n" + r.toleranceTable().CSV()
}

// JSON renders the full measurement for results/BENCH_window.json.
func (r *WindowBenchResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
