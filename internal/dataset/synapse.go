package dataset

import "fmt"

// Synapse models the Matrix Synapse events table [19]: an immutable
// history of state-update events with per-type content, a two-level
// signatures nested collection ({server: {key_id: signature}} — the
// paper's Table 1 recall outlier), power-level user maps (collection
// objects keyed by user id), and schema drift across protocol revisions
// (the paper observed 36 revisions; we model drift with era-dependent
// envelope fields).
func Synapse() *Generator {
	types := []string{
		"m.room.message", "m.room.member", "m.room.create", "m.room.topic",
		"m.room.name", "m.room.power_levels", "m.room.join_rules",
		"m.room.history_visibility", "m.room.redaction", "m.room.encryption",
	}
	weights := []float64{55, 20, 2, 4, 4, 5, 3, 3, 3, 1}
	return &Generator{
		Name: "synapse",
		Description: "chat event log: per-type content entities, two-level signatures " +
			"collection, user-keyed power-level maps, protocol-revision drift",
		Entities: types,
		DefaultN: 4000,
		Generate: func(n int, seed int64) []Record {
			g := newGen(seed)
			out := make([]Record, 0, n)
			for i := 0; i < n; i++ {
				evType := types[g.weighted(weights)]
				era := g.intn(0, 2) // protocol revision era
				rec := map[string]any{
					"event_id":         g.id("$ev"),
					"type":             evType,
					"room_id":          g.id("!room"),
					"sender":           "@" + g.word() + ":" + g.word() + ".org",
					"origin_server_ts": float64(g.intn(1_500_000_000, 1_700_000_000)) * 1000,
					"depth":            float64(g.intn(1, 100_000)),
					"content":          g.synapseContent(evType),
					"signatures":       g.synapseSignatures(),
					"prev_events":      g.synapseEventRefs(),
					"auth_events":      g.synapseEventRefs(),
				}
				// Era drift: later protocol revisions added fields.
				if era >= 1 {
					rec["origin"] = g.word() + ".org"
				}
				if era >= 2 {
					rec["unsigned"] = map[string]any{"age": float64(g.intn(0, 1_000_000))}
				}
				out = append(out, record(rec, evType))
			}
			return out
		},
	}
}

// synapseSignatures builds the {server: {key_id: signature}} two-level
// nested collection of §7.1.
func (g *gen) synapseSignatures() map[string]any {
	servers := map[string]any{}
	for i, srv := range g.subsetKeys("server", 120, g.intn(1, 3)) {
		keys := map[string]any{}
		for _, k := range g.subsetKeys("ed25519:key", 40, g.intn(1, 2)) {
			keys[k] = g.id("sig")
		}
		servers[srv+".example.org"] = keys
		_ = i
	}
	return servers
}

func (g *gen) synapseEventRefs() []any {
	n := g.intn(1, 3)
	out := make([]any, n)
	for i := range out {
		out[i] = g.id("$ref")
	}
	return out
}

func (g *gen) synapseContent(evType string) map[string]any {
	switch evType {
	case "m.room.message":
		c := map[string]any{
			"body":    g.sentence(7),
			"msgtype": g.pick("m.text", "m.image", "m.notice", "m.emote"),
		}
		if g.chance(0.15) {
			c["format"] = "org.matrix.custom.html"
			c["formatted_body"] = "<p>" + g.sentence(7) + "</p>"
		}
		return c
	case "m.room.member":
		c := map[string]any{
			"membership": g.pick("join", "leave", "invite", "ban"),
		}
		if g.chance(0.7) {
			c["displayname"] = g.word()
		}
		if g.chance(0.3) {
			c["avatar_url"] = "mxc://" + g.word() + "/" + g.id("m")
		}
		return c
	case "m.room.create":
		return map[string]any{
			"creator":      "@" + g.word() + ":" + g.word() + ".org",
			"room_version": fmt.Sprintf("%d", g.intn(1, 9)),
		}
	case "m.room.topic":
		return map[string]any{"topic": g.sentence(5)}
	case "m.room.name":
		return map[string]any{"name": g.sentence(2)}
	case "m.room.power_levels":
		// users is a collection object keyed by user id — the paper's
		// "users": {"Alice": 100, "Bob": 100} example.
		users := map[string]any{}
		for _, u := range g.subsetKeys("user", 300, g.intn(2, 10)) {
			users["@"+u+":example.org"] = float64(g.pick2(0, 50, 100))
		}
		events := map[string]any{}
		for _, e := range g.subsetKeys("m.room.evt", 20, g.intn(2, 6)) {
			events[e] = float64(g.pick2(0, 50, 100))
		}
		return map[string]any{
			"users":          users,
			"events":         events,
			"users_default":  float64(0),
			"events_default": float64(0),
			"state_default":  float64(50),
			"ban":            float64(50),
			"kick":           float64(50),
			"redact":         float64(50),
		}
	case "m.room.join_rules":
		return map[string]any{"join_rule": g.pick("public", "invite")}
	case "m.room.history_visibility":
		return map[string]any{"history_visibility": g.pick("shared", "joined", "invited")}
	case "m.room.redaction":
		c := map[string]any{"redacts": g.id("$ev")}
		if g.chance(0.4) {
			c["reason"] = g.sentence(3)
		}
		return c
	case "m.room.encryption":
		return map[string]any{
			"algorithm":            "m.megolm.v1.aes-sha2",
			"rotation_period_ms":   float64(604800000),
			"rotation_period_msgs": float64(100),
		}
	}
	panic("dataset: unknown synapse event type " + evType)
}

// pick2 returns one of the given ints uniformly.
func (g *gen) pick2(choices ...int) int { return choices[g.r.Intn(len(choices))] }
