package dataset

import (
	"testing"

	"jxplain/internal/core"
	"jxplain/internal/entropy"
	"jxplain/internal/jsontype"
	"jxplain/internal/schema"
)

// Behavioral integration tests: the generators must trigger the paper's
// phenomena when run through JXPLAIN.

func discover(t *testing.T, name string, n int, cfg core.Config) (schema.Schema, []Record) {
	t.Helper()
	g, ok := ByName(name)
	if !ok {
		t.Fatalf("unknown dataset %s", name)
	}
	recs := g.Generate(n, 1)
	return core.DiscoverTypes(Types(recs), cfg), recs
}

func TestPharmaCollectionDetected(t *testing.T) {
	s, _ := discover(t, "pharma", 300, core.Default())
	colls := schema.CountNodes(s, func(n schema.Schema) bool {
		return n.Node() == schema.NodeObjectCollection
	})
	if colls == 0 {
		t.Fatalf("pharma counts must be detected as a collection: %s", s)
	}
	// Generalizes to unseen drugs.
	unseen := jsontype.MustFromValue(map[string]any{
		"npi": 1.0,
		"provider_variables": map[string]any{
			"brand_name_rx_count": 1.0, "generic_rx_count": 2.0, "gender": "F",
			"region": "South", "settlement_type": "urban", "specialty": "Cardiology",
			"years_practicing": 9.0,
		},
		"cms_prescription_counts": map[string]any{"TOTALLY_NEW_DRUG": 7.0},
	})
	if !s.Accepts(unseen) {
		t.Error("pharma schema must generalize to unseen drug keys")
	}
	k, _ := discover(t, "pharma", 300, core.KReduceConfig())
	if k.Accepts(unseen) {
		t.Error("K-reduce must fail to generalize to unseen drug keys")
	}
}

func TestSynapseSignaturesCollection(t *testing.T) {
	s, _ := discover(t, "synapse", 500, core.Default())
	// The two-level signatures nested collection must appear.
	nested := schema.CountNodes(s, func(n schema.Schema) bool {
		oc, ok := n.(*schema.ObjectCollection)
		if !ok {
			return false
		}
		_, inner := oc.Value.(*schema.ObjectCollection)
		return inner
	})
	if nested == 0 {
		t.Errorf("signatures {server: {key: sig}} must be a two-level collection")
	}
}

func TestTwitterGeoTupleDetected(t *testing.T) {
	s, _ := discover(t, "twitter", 800, core.Default())
	// Some ArrayTuple of exactly two numbers must exist (the geo pair).
	geoTuples := schema.CountNodes(s, func(n schema.Schema) bool {
		at, ok := n.(*schema.ArrayTuple)
		if !ok || len(at.Elems) != 2 || at.MinLen != 2 {
			return false
		}
		for _, e := range at.Elems {
			p, ok := e.(*schema.Primitive)
			if !ok || p.K != jsontype.KindNumber {
				return false
			}
		}
		return true
	})
	if geoTuples == 0 {
		t.Error("geo coordinates must be detected as [ℝ, ℝ] tuples")
	}
}

func TestYelpCheckinPivotCollections(t *testing.T) {
	s, _ := discover(t, "yelp-checkin", 500, core.Default())
	nested := schema.CountNodes(s, func(n schema.Schema) bool {
		oc, ok := n.(*schema.ObjectCollection)
		if !ok {
			return false
		}
		_, inner := oc.Value.(*schema.ObjectCollection)
		return inner
	})
	if nested == 0 {
		t.Errorf("day×hour pivot must be a two-level collection: %s", s)
	}
}

func TestWikidataCollectionsDetected(t *testing.T) {
	s, _ := discover(t, "wikidata", 200, core.Default())
	// labels/descriptions/claims/sitelinks are language-/property-/site-
	// keyed collections; several object collections must appear.
	colls := schema.CountNodes(s, func(n schema.Schema) bool {
		return n.Node() == schema.NodeObjectCollection
	})
	if colls < 3 {
		t.Errorf("wikidata should expose ≥3 object collections, got %d", colls)
	}
	// Unseen language keys must validate (the generalization win of Table 1).
	unseen := jsontype.MustFromValue(map[string]any{
		"type": "item", "id": "Q1", "lastrevid": 1.0, "modified": "2024-01-01T00:00:00Z",
		"labels":       map[string]any{"lang_9999": map[string]any{"language": "lang_9999", "value": "x"}},
		"descriptions": map[string]any{"lang_9999": map[string]any{"language": "lang_9999", "value": "y"}},
		"aliases":      map[string]any{},
		"claims":       map[string]any{},
		"sitelinks":    map[string]any{},
	})
	if !s.Accepts(unseen) {
		t.Error("wikidata schema should generalize to unseen languages")
	}
}

func TestTwitterIndicesTuples(t *testing.T) {
	s, _ := discover(t, "twitter", 800, core.Default())
	// hashtag/url/mention indices are always [start, end] numeric pairs —
	// at least some must surface as 2-element tuples, not collections.
	pairs := schema.CountNodes(s, func(n schema.Schema) bool {
		at, ok := n.(*schema.ArrayTuple)
		return ok && len(at.Elems) == 2 && at.MinLen == 2
	})
	if pairs == 0 {
		t.Error("indices pairs should be detected as tuples")
	}
}

func TestYelpMergedEntityCount(t *testing.T) {
	g, _ := ByName("yelp-merged")
	recs := g.Generate(3000, 1)
	s := core.DiscoverTypes(Types(recs), core.Default())
	// Root-level entities: count top-level ObjectTuple alternatives.
	n := rootEntities(s)
	if n < 5 || n > 9 {
		t.Errorf("yelp-merged should partition into ≈6 root entities, got %d", n)
	}
	// All training records accepted.
	for i, rec := range recs[:500] {
		if !s.Accepts(rec.Type) {
			t.Fatalf("record %d (%s) rejected by its own training schema", i, rec.Entity)
		}
	}
}

// rootEntities counts tuple alternatives at the schema root.
func rootEntities(s schema.Schema) int {
	switch n := s.(type) {
	case *schema.Union:
		total := 0
		for _, a := range n.Alts {
			total += rootEntities(a)
		}
		return total
	case *schema.ObjectTuple, *schema.ArrayTuple:
		return 1
	}
	return 0
}

func TestGitHubEntitiesDiscovered(t *testing.T) {
	g, _ := ByName("github")
	recs := g.Generate(3000, 1)
	s := core.DiscoverTypes(Types(recs), core.Default())
	n := rootEntities(s)
	// 10 event types; subset-payload events (WatchEvent ⊂ IssuesEvent ⊂
	// IssueCommentEvent, DeleteEvent ⊂ CreateEvent) may absorb, as the
	// paper's Table 3 GitHub errors show.
	if n < 6 || n > 12 {
		t.Errorf("github root entities = %d, want ≈10 (6..12)", n)
	}
	// A mixed payload must be rejected while real ones validate.
	for _, rec := range recs[:200] {
		if !s.Accepts(rec.Type) {
			t.Fatalf("github training record rejected")
		}
	}
}

func TestKReduceSingleEntityOnMerged(t *testing.T) {
	g, _ := ByName("yelp-merged")
	recs := g.Generate(1500, 1)
	s := core.DiscoverTypes(Types(recs), core.KReduceConfig())
	if n := rootEntities(s); n != 1 {
		t.Errorf("K-reduce must produce a single root entity, got %d", n)
	}
}

func TestPipelineMatchesDiscoverOnAllDatasets(t *testing.T) {
	// The staged pipeline fixes tuple/collection decisions per *path*
	// (pass ①), while the recursive §4.1 implementation re-evaluates the
	// heuristic per entity-restricted bag. On datasets whose root is a
	// single entity the two walks see identical bags everywhere, so the
	// schemas must be structurally identical. On multi-entity datasets
	// (github, twitter, synapse, yelp-merged, yelp-business) nested bags
	// shrink per entity and borderline decisions can flip; there we assert
	// behavioral agreement: both must validate all training records.
	exact := map[string]bool{
		"nyt": true, "pharma": true, "wikidata": true, "yelp-checkin": true,
		"yelp-photos": true, "yelp-review": true, "yelp-tip": true, "yelp-user": true,
	}
	for _, g := range Registry() {
		n := 400
		if g.Name == "wikidata" {
			n = 150
		}
		types := Types(g.Generate(n, 5))
		rec := schema.Simplify(core.DiscoverTypes(types, core.Default()))
		pipe := schema.Simplify(core.PipelineTypes(types, core.Default()))
		if exact[g.Name] {
			if !schema.Equal(rec, pipe) {
				t.Errorf("%s: pipeline and recursive discovery diverge structurally", g.Name)
			}
			continue
		}
		for i, ty := range types {
			if !rec.Accepts(ty) {
				t.Errorf("%s: recursive schema rejects training record %d", g.Name, i)
				break
			}
			if !pipe.Accepts(ty) {
				t.Errorf("%s: pipeline schema rejects training record %d", g.Name, i)
				break
			}
		}
	}
}

func TestEntropyEvidenceBimodalOnYelp(t *testing.T) {
	// Figure 4's premise: complex-kinded self-similar paths have either
	// near-zero or clearly-high key-space entropy, so the threshold is not
	// sensitive. Verify on the merged Yelp data.
	g, _ := ByName("yelp-merged")
	types := Types(g.Generate(1500, 3))
	bag := &jsontype.Bag{}
	for _, t2 := range types {
		bag.Add(t2)
	}
	stats := core.CollectPathStats(bag, core.Default())
	gray := 0
	for _, st := range stats {
		if !st.Evidence.Similar || st.Evidence.Records < 20 {
			continue
		}
		if st.Evidence.KeyEntropy > 0.6 && st.Evidence.KeyEntropy < 1.1 {
			gray++
		}
	}
	if gray > 3 {
		t.Errorf("too many paths in the threshold gray zone: %d", gray)
	}
	_ = entropy.Collection
}
