package dataset

// Twitter models the decahose sample: a composite stream of tweet objects
// and delete events (multi-entity), geo coordinates as 2-element tuple
// arrays (the GeoJSON pattern of §3.1), object arrays for hashtags / urls
// / mentions, and bounded-recursion retweeted_status / quoted_status
// sub-tweets.
func Twitter() *Generator {
	return &Generator{
		Name: "twitter",
		Description: "tweets + delete events: multi-entity stream, [ℝ,ℝ] geo tuples, " +
			"object arrays, recursive retweet/quote nesting",
		Entities: []string{"tweet", "delete"},
		DefaultN: 5000,
		Generate: func(n int, seed int64) []Record {
			g := newGen(seed)
			out := make([]Record, 0, n)
			for i := 0; i < n; i++ {
				if g.chance(0.10) {
					out = append(out, record(g.twitterDelete(), "delete"))
				} else {
					out = append(out, record(g.tweet(2), "tweet"))
				}
			}
			return out
		},
	}
}

func (g *gen) twitterDelete() map[string]any {
	return map[string]any{
		"delete": map[string]any{
			"status": map[string]any{
				"id":          float64(g.intn(1, 2_000_000_000)),
				"id_str":      g.id("t"),
				"user_id":     float64(g.intn(1, 900_000_000)),
				"user_id_str": g.id("u"),
			},
			"timestamp_ms": g.id("ts"),
		},
	}
}

// tweet generates a tweet object; depth bounds the retweet/quote
// recursion (real tweets nest at most one level of each).
func (g *gen) tweet(depth int) map[string]any {
	t := map[string]any{
		"created_at":      g.date(),
		"id":              float64(g.intn(1, 2_000_000_000)),
		"id_str":          g.id("t"),
		"text":            g.sentence(8),
		"source":          g.pick("web", "android", "iphone"),
		"truncated":       g.chance(0.1),
		"user":            g.twitterUser(),
		"geo":             g.maybeGeo(),
		"coordinates":     g.maybeGeo(),
		"place":           g.maybePlace(),
		"entities":        g.tweetEntities(),
		"retweet_count":   float64(g.intn(0, 50_000)),
		"favorite_count":  float64(g.intn(0, 100_000)),
		"favorited":       false,
		"retweeted":       false,
		"is_quote_status": g.chance(0.15),
		"lang":            g.pick("en", "es", "ja", "pt", "und"),
	}
	if depth > 0 && g.chance(0.25) {
		t["retweeted_status"] = g.tweet(0)
	}
	if depth > 0 && g.chance(0.08) {
		t["quoted_status"] = g.tweet(0)
	}
	return t
}

func (g *gen) twitterUser() map[string]any {
	u := map[string]any{
		"id":              float64(g.intn(1, 900_000_000)),
		"id_str":          g.id("u"),
		"name":            g.word(),
		"screen_name":     g.word(),
		"verified":        g.chance(0.02),
		"followers_count": float64(g.intn(0, 1_000_000)),
		"friends_count":   float64(g.intn(0, 10_000)),
		"statuses_count":  float64(g.intn(0, 200_000)),
		"created_at":      g.date(),
		"geo_enabled":     g.chance(0.3),
	}
	// Profile fields are null when unset (not absent), as in the real API.
	if g.chance(0.6) {
		u["location"] = g.word()
	} else {
		u["location"] = nil
	}
	if g.chance(0.7) {
		u["description"] = g.sentence(6)
	} else {
		u["description"] = nil
	}
	return u
}

// maybeGeo returns null or a GeoJSON-style point whose coordinates are a
// 2-element tuple array — the §3.1 motivating example.
func (g *gen) maybeGeo() any {
	if !g.chance(0.15) {
		return nil
	}
	return map[string]any{
		"type":        "Point",
		"coordinates": []any{g.num(180) - 90, g.num(360) - 180},
	}
}

func (g *gen) maybePlace() any {
	if !g.chance(0.12) {
		return nil
	}
	// The bounding box is an array of one ring of four [lon, lat] tuples.
	ring := make([]any, 4)
	for i := range ring {
		ring[i] = []any{g.num(360) - 180, g.num(180) - 90}
	}
	return map[string]any{
		"id":           g.id("pl"),
		"place_type":   g.pick("city", "admin", "country", "poi"),
		"name":         g.word(),
		"full_name":    g.sentence(2),
		"country_code": g.pick("US", "BR", "JP", "GB"),
		"country":      g.word(),
		"bounding_box": map[string]any{
			"type":        "Polygon",
			"coordinates": []any{ring},
		},
	}
}

func (g *gen) tweetEntities() map[string]any {
	hashtags := make([]any, g.intn(0, 4))
	for i := range hashtags {
		hashtags[i] = map[string]any{
			"text":    g.word(),
			"indices": []any{float64(g.intn(0, 100)), float64(g.intn(0, 140))},
		}
	}
	urls := make([]any, g.intn(0, 2))
	for i := range urls {
		urls[i] = map[string]any{
			"url":          "https://t.example/" + g.word(),
			"expanded_url": "https://example.com/" + g.word(),
			"display_url":  g.word() + ".example",
			"indices":      []any{float64(g.intn(0, 100)), float64(g.intn(0, 140))},
		}
	}
	mentions := make([]any, g.intn(0, 3))
	for i := range mentions {
		mentions[i] = map[string]any{
			"screen_name": g.word(),
			"name":        g.word(),
			"id":          float64(g.intn(1, 900_000_000)),
			"indices":     []any{float64(g.intn(0, 100)), float64(g.intn(0, 140))},
		}
	}
	return map[string]any{
		"hashtags":      hashtags,
		"urls":          urls,
		"user_mentions": mentions,
	}
}
