package dataset

// GitHub models the GitHub event-stream dataset: a multi-entity collection
// of ten observed event types (the paper's trace contained 10 of the 49
// documented types) with wildly skewed sizes, a shared envelope, and
// per-type payload structure including nested object arrays (push commits,
// gollum pages, release assets). Entities have few optional fields, which
// is why the paper's Table 4 shows Bimax-Naive ≈ Bimax-Merge here.
func GitHub() *Generator {
	entities := []string{
		"PushEvent", "CreateEvent", "IssuesEvent", "WatchEvent",
		"PullRequestEvent", "IssueCommentEvent", "ForkEvent", "DeleteEvent",
		"GollumEvent", "ReleaseEvent", "MemberEvent", "PublicEvent",
		"CommitCommentEvent", "PullRequestReviewCommentEvent",
	}
	weights := []float64{48, 11, 8, 8, 7, 5, 4, 3, 2, 1, 1, 0.5, 0.8, 0.7}
	return &Generator{
		Name: "github",
		Description: "event stream: 14 entities with skewed sizes, shared envelope, " +
			"nested object arrays in payloads",
		Entities: entities,
		DefaultN: 4000,
		Generate: func(n int, seed int64) []Record {
			g := newGen(seed)
			out := make([]Record, 0, n)
			for i := 0; i < n; i++ {
				eventType := entities[g.weighted(weights)]
				rec := map[string]any{
					"id":         g.id("evt"),
					"type":       eventType,
					"actor":      g.githubActor(),
					"repo":       g.githubRepo(),
					"public":     true,
					"created_at": g.date(),
					"payload":    g.githubPayload(eventType),
				}
				// A rare envelope optional: org appears on ~8% of events.
				if g.chance(0.08) {
					rec["org"] = g.githubActor()
				}
				out = append(out, record(rec, eventType))
			}
			return out
		},
	}
}

func (g *gen) githubActor() map[string]any {
	return map[string]any{
		"id":         float64(g.intn(1, 9_000_000)),
		"login":      g.word(),
		"url":        "https://api.github.example/users/" + g.word(),
		"avatar_url": "https://avatars.example/" + g.id("u"),
	}
}

func (g *gen) githubRepo() map[string]any {
	return map[string]any{
		"id":   float64(g.intn(1, 40_000_000)),
		"name": g.word() + "/" + g.word(),
		"url":  "https://api.github.example/repos/" + g.word(),
	}
}

func (g *gen) githubUser() map[string]any {
	return map[string]any{
		"id":    float64(g.intn(1, 9_000_000)),
		"login": g.word(),
		"type":  "User",
	}
}

func (g *gen) githubIssue() map[string]any {
	issue := map[string]any{
		"id":       float64(g.intn(1, 100_000_000)),
		"number":   float64(g.intn(1, 9000)),
		"title":    g.sentence(4),
		"state":    g.pick("open", "closed"),
		"body":     g.sentence(12),
		"user":     g.githubUser(),
		"comments": float64(g.intn(0, 40)),
		"labels":   g.githubLabels(),
	}
	return issue
}

func (g *gen) githubLabels() []any {
	n := g.intn(0, 3)
	out := make([]any, n)
	for i := range out {
		out[i] = map[string]any{
			"name":  g.word(),
			"color": "ababab",
		}
	}
	return out
}

func (g *gen) githubPayload(eventType string) map[string]any {
	switch eventType {
	case "PushEvent":
		nCommits := g.intn(1, 6)
		commits := make([]any, nCommits)
		for i := range commits {
			commits[i] = map[string]any{
				"sha":     g.id("sha"),
				"message": g.sentence(5),
				"author": map[string]any{
					"name":  g.word(),
					"email": g.word() + "@example.com",
				},
				"distinct": g.chance(0.9),
			}
		}
		return map[string]any{
			"push_id":       float64(g.intn(1, 1_000_000_000)),
			"size":          float64(nCommits),
			"distinct_size": float64(nCommits),
			"ref":           "refs/heads/" + g.word(),
			"head":          g.id("sha"),
			"before":        g.id("sha"),
			"commits":       commits,
		}
	case "CreateEvent":
		var ref any = g.word()
		if g.chance(0.3) {
			ref = nil // repository creations carry a null ref
		}
		return map[string]any{
			"ref":           ref,
			"ref_type":      g.pick("branch", "tag", "repository"),
			"master_branch": "main",
			"description":   g.sentence(6),
			"pusher_type":   "user",
		}
	case "IssuesEvent":
		return map[string]any{
			"action": g.pick("opened", "closed", "reopened"),
			"issue":  g.githubIssue(),
		}
	case "WatchEvent":
		return map[string]any{"action": "started"}
	case "PullRequestEvent":
		return map[string]any{
			"action": g.pick("opened", "closed", "synchronize"),
			"number": float64(g.intn(1, 9000)),
			"pull_request": map[string]any{
				"id":     float64(g.intn(1, 400_000_000)),
				"state":  g.pick("open", "closed"),
				"title":  g.sentence(4),
				"merged": g.chance(0.4),
				"user":   g.githubUser(),
				"base":   map[string]any{"ref": "main", "sha": g.id("sha")},
				"head":   map[string]any{"ref": g.word(), "sha": g.id("sha")},
			},
		}
	case "IssueCommentEvent":
		return map[string]any{
			"action": "created",
			"issue":  g.githubIssue(),
			"comment": map[string]any{
				"id":   float64(g.intn(1, 700_000_000)),
				"body": g.sentence(10),
				"user": g.githubUser(),
			},
		}
	case "ForkEvent":
		return map[string]any{
			"forkee": map[string]any{
				"id":        float64(g.intn(1, 40_000_000)),
				"name":      g.word(),
				"full_name": g.word() + "/" + g.word(),
				"owner":     g.githubUser(),
				"private":   false,
			},
		}
	case "DeleteEvent":
		return map[string]any{
			"ref":         g.word(),
			"ref_type":    g.pick("branch", "tag"),
			"pusher_type": "user",
		}
	case "GollumEvent":
		nPages := g.intn(1, 3)
		pages := make([]any, nPages)
		for i := range pages {
			pages[i] = map[string]any{
				"page_name": g.word(),
				"title":     g.sentence(2),
				"action":    g.pick("created", "edited"),
				"sha":       g.id("sha"),
			}
		}
		return map[string]any{"pages": pages}
	case "MemberEvent":
		return map[string]any{
			"action": g.pick("added", "removed"),
			"member": g.githubUser(),
		}
	case "PublicEvent":
		// The repository-made-public event carries an empty payload.
		return map[string]any{}
	case "CommitCommentEvent":
		return map[string]any{
			"comment": map[string]any{
				"id":        float64(g.intn(1, 700_000_000)),
				"body":      g.sentence(8),
				"commit_id": g.id("sha"),
				"user":      g.githubUser(),
				"path":      g.word() + ".go",
				"position":  float64(g.intn(1, 400)),
			},
		}
	case "PullRequestReviewCommentEvent":
		return map[string]any{
			"action": "created",
			"comment": map[string]any{
				"id":        float64(g.intn(1, 700_000_000)),
				"body":      g.sentence(8),
				"diff_hunk": "@@ -1,3 +1,3 @@",
				"user":      g.githubUser(),
				"path":      g.word() + ".go",
			},
			"pull_request": map[string]any{
				"id":     float64(g.intn(1, 400_000_000)),
				"state":  g.pick("open", "closed"),
				"title":  g.sentence(4),
				"merged": g.chance(0.4),
				"user":   g.githubUser(),
				"base":   map[string]any{"ref": "main", "sha": g.id("sha")},
				"head":   map[string]any{"ref": g.word(), "sha": g.id("sha")},
			},
		}
	case "ReleaseEvent":
		nAssets := g.intn(0, 2)
		assets := make([]any, nAssets)
		for i := range assets {
			assets[i] = map[string]any{
				"name":           g.word() + ".tar.gz",
				"size":           float64(g.intn(1000, 5_000_000)),
				"download_count": float64(g.intn(0, 10_000)),
			}
		}
		return map[string]any{
			"action": "published",
			"release": map[string]any{
				"id":         float64(g.intn(1, 30_000_000)),
				"tag_name":   "v" + g.word(),
				"name":       g.sentence(3),
				"draft":      false,
				"prerelease": g.chance(0.2),
				"assets":     assets,
			},
		}
	}
	panic("dataset: unknown github event type " + eventType)
}
