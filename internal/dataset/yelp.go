package dataset

import "fmt"

// The six tables of the Yelp Open Dataset [35] plus the synthetic
// Yelp-Merged union used for the entity-discovery ground truth (Table 3):
//
//   - business: 20ish top-level fields with many optional attributes, a
//     day-keyed hours object, and the by_appointment ⇔ hair-salon soft
//     functional dependency the paper calls out;
//   - checkin: the day × hour pivot-table nested collection;
//   - photos / review / tip: stable single-entity tuples;
//   - user: stable keys but high type variety from friends/elite arrays
//     (the source of L-reduce's thousands of distinct types);
//   - merged: all six with shared foreign keys (business_id, user_id) and
//     a colliding "name" field.

// YelpBusiness models the business table.
func YelpBusiness() *Generator {
	return &Generator{
		Name: "yelp-business",
		Description: "businesses: optional attribute tuple, day-keyed hours, " +
			"by_appointment/hair-salon soft FD",
		Entities: []string{"business"},
		DefaultN: 4000,
		Generate: func(n int, seed int64) []Record {
			g := newGen(seed)
			out := make([]Record, 0, n)
			for i := 0; i < n; i++ {
				out = append(out, record(g.yelpBusiness(), "business"))
			}
			return out
		},
	}
}

func (g *gen) yelpBusiness() map[string]any {
	salon := g.chance(0.04)
	rec := map[string]any{
		"business_id":  g.id("b"),
		"name":         g.sentence(2),
		"address":      g.sentence(3),
		"city":         g.word(),
		"state":        g.pick("AZ", "NV", "ON", "PA", "NC"),
		"latitude":     g.num(180) - 90,
		"longitude":    g.num(360) - 180,
		"stars":        float64(g.intn(2, 10)) / 2,
		"review_count": float64(g.intn(3, 5000)),
		"is_open":      float64(g.intn(0, 1)),
	}
	if g.chance(0.9) {
		rec["postal_code"] = fmt.Sprintf("%05d", g.intn(10000, 99999))
	}
	category := g.pick("Restaurants", "Shopping", "Nightlife", "Automotive", "Home Services")
	if salon {
		category = "Hair Salons"
	}
	if g.chance(0.95) {
		rec["categories"] = category + ", " + g.word()
	}
	if g.chance(0.85) {
		rec["attributes"] = g.yelpAttributes(salon)
	}
	if g.chance(0.75) {
		rec["hours"] = g.yelpHours()
	}
	return rec
}

// yelpAttributes builds the attributes object. Attribute values mix kinds
// (stringified flags, nested-dict strings, numbers), so the similar-types
// constraint keeps the object tuple-like despite its high key variation.
// Hair salons carry ByAppointmentOnly plus salon-specific attributes,
// giving JXPLAIN a second entity inside the business fields.
func (g *gen) yelpAttributes(salon bool) map[string]any {
	a := map[string]any{}
	if salon {
		// The soft FD: salons nearly always have by-appointment.
		if g.chance(0.98) {
			a["ByAppointmentOnly"] = g.pick("True", "False")
		}
		if g.chance(0.95) {
			a["AcceptsInsurance"] = g.pick("True", "False")
		}
		if g.chance(0.92) {
			a["HairSpecializesIn"] = "{'coloring': True, 'perms': " + g.pick("True", "False") + "}"
		}
		if g.chance(0.7) {
			a["RestaurantsPriceRange2"] = float64(g.intn(1, 4))
		}
		return a
	}
	if g.chance(0.005) {
		a["ByAppointmentOnly"] = "True" // the rare FD violation (§7.3)
	}
	if g.chance(0.7) {
		a["RestaurantsPriceRange2"] = float64(g.intn(1, 4))
	}
	if g.chance(0.6) {
		a["BusinessAcceptsCreditCards"] = g.pick("True", "False")
	}
	if g.chance(0.5) {
		a["BusinessParking"] = "{'garage': False, 'street': " + g.pick("True", "False") + "}"
	}
	if g.chance(0.4) {
		a["RestaurantsTakeOut"] = g.pick("True", "False")
	}
	if g.chance(0.4) {
		a["RestaurantsDelivery"] = g.pick("True", "False")
	}
	if g.chance(0.3) {
		a["WiFi"] = g.pick("u'free'", "u'no'", "u'paid'")
	}
	if g.chance(0.3) {
		a["Ambience"] = "{'romantic': False, 'casual': " + g.pick("True", "False") + "}"
	}
	if g.chance(0.25) {
		a["GoodForKids"] = g.pick("True", "False")
	}
	if g.chance(0.2) {
		a["NoiseLevel"] = g.pick("u'quiet'", "u'average'", "u'loud'")
	}
	return a
}

// yelpHours builds the day-keyed hours object: all-string values over a
// 7-key domain with per-day presence, which key-space entropy marks as a
// small collection.
func (g *gen) yelpHours() map[string]any {
	days := []string{"Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday"}
	h := map[string]any{}
	for _, d := range days {
		if g.chance(0.75) {
			h[d] = fmt.Sprintf("%d:0-%d:0", g.intn(6, 11), g.intn(15, 23))
		}
	}
	if len(h) == 0 {
		h[days[g.r.Intn(7)]] = "9:0-17:0"
	}
	return h
}

// YelpCheckin models the checkin table: a two-level day × hour pivot.
func YelpCheckin() *Generator {
	return &Generator{
		Name:        "yelp-checkin",
		Description: "checkins: day-of-week × hour-of-day pivot nested collection",
		Entities:    []string{"checkin"},
		DefaultN:    4000,
		Generate: func(n int, seed int64) []Record {
			g := newGen(seed)
			out := make([]Record, 0, n)
			for i := 0; i < n; i++ {
				out = append(out, record(g.yelpCheckin(), "checkin"))
			}
			return out
		},
	}
}

func (g *gen) yelpCheckin() map[string]any {
	days := []string{"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"}
	time := map[string]any{}
	for _, d := range days {
		if !g.chance(0.7) {
			continue
		}
		hours := map[string]any{}
		nHours := g.intn(1, 8)
		for j := 0; j < nHours; j++ {
			hours[fmt.Sprintf("%d", g.intn(0, 23))] = float64(g.intn(1, 40))
		}
		time[d] = hours
	}
	if len(time) == 0 {
		time["Fri"] = map[string]any{"20": float64(1)}
	}
	return map[string]any{
		"business_id": g.id("b"),
		"time":        time,
	}
}

// YelpPhotos models the photos table: four mandatory fields, no variation.
func YelpPhotos() *Generator {
	return &Generator{
		Name:        "yelp-photos",
		Description: "photos: 4 mandatory string fields, single stable entity",
		Entities:    []string{"photo"},
		DefaultN:    4000,
		Generate: func(n int, seed int64) []Record {
			g := newGen(seed)
			out := make([]Record, 0, n)
			for i := 0; i < n; i++ {
				out = append(out, record(g.yelpPhoto(), "photo"))
			}
			return out
		},
	}
}

func (g *gen) yelpPhoto() map[string]any {
	return map[string]any{
		"photo_id":    g.id("p"),
		"business_id": g.id("b"),
		"caption":     g.sentence(4),
		"label":       g.pick("food", "inside", "outside", "drink", "menu"),
	}
}

// YelpReview models the review table.
func YelpReview() *Generator {
	return &Generator{
		Name:        "yelp-review",
		Description: "reviews: stable single-entity tuples",
		Entities:    []string{"review"},
		DefaultN:    4000,
		Generate: func(n int, seed int64) []Record {
			g := newGen(seed)
			out := make([]Record, 0, n)
			for i := 0; i < n; i++ {
				out = append(out, record(g.yelpReview(), "review"))
			}
			return out
		},
	}
}

func (g *gen) yelpReview() map[string]any {
	return map[string]any{
		"review_id":   g.id("r"),
		"user_id":     g.id("u"),
		"business_id": g.id("b"),
		"stars":       float64(g.intn(1, 5)),
		"useful":      float64(g.intn(0, 50)),
		"funny":       float64(g.intn(0, 50)),
		"cool":        float64(g.intn(0, 50)),
		"text":        g.sentence(30),
		"date":        g.date(),
	}
}

// YelpTip models the tip table.
func YelpTip() *Generator {
	return &Generator{
		Name:        "yelp-tip",
		Description: "tips: stable single-entity tuples",
		Entities:    []string{"tip"},
		DefaultN:    4000,
		Generate: func(n int, seed int64) []Record {
			g := newGen(seed)
			out := make([]Record, 0, n)
			for i := 0; i < n; i++ {
				out = append(out, record(g.yelpTip(), "tip"))
			}
			return out
		},
	}
}

func (g *gen) yelpTip() map[string]any {
	return map[string]any{
		"user_id":          g.id("u"),
		"business_id":      g.id("b"),
		"text":             g.sentence(12),
		"date":             g.date(),
		"compliment_count": float64(g.intn(0, 10)),
	}
}

// YelpUser models the user table: stable keys, but friends/elite arrays of
// varying length give L-reduction thousands of distinct types.
func YelpUser() *Generator {
	return &Generator{
		Name: "yelp-user",
		Description: "users: stable keys, variable-length friends/elite arrays " +
			"(type explosion under L-reduction)",
		Entities: []string{"user"},
		DefaultN: 4000,
		Generate: func(n int, seed int64) []Record {
			g := newGen(seed)
			out := make([]Record, 0, n)
			for i := 0; i < n; i++ {
				out = append(out, record(g.yelpUser(), "user"))
			}
			return out
		},
	}
}

func (g *gen) yelpUser() map[string]any {
	nFriends := g.intn(0, 60)
	friends := make([]any, nFriends)
	for i := range friends {
		friends[i] = g.id("u")
	}
	nElite := 0
	if g.chance(0.15) {
		nElite = g.intn(1, 8)
	}
	elite := make([]any, nElite)
	for i := range elite {
		elite[i] = fmt.Sprintf("%d", g.intn(2008, 2023))
	}
	return map[string]any{
		"user_id":            g.id("u"),
		"name":               g.word(),
		"review_count":       float64(g.intn(0, 5000)),
		"yelping_since":      g.date(),
		"friends":            friends,
		"useful":             float64(g.intn(0, 10000)),
		"funny":              float64(g.intn(0, 10000)),
		"cool":               float64(g.intn(0, 10000)),
		"fans":               float64(g.intn(0, 500)),
		"elite":              elite,
		"average_stars":      float64(g.intn(10, 50)) / 10,
		"compliment_hot":     float64(g.intn(0, 200)),
		"compliment_more":    float64(g.intn(0, 200)),
		"compliment_profile": float64(g.intn(0, 200)),
		"compliment_cute":    float64(g.intn(0, 200)),
		"compliment_list":    float64(g.intn(0, 200)),
		"compliment_note":    float64(g.intn(0, 200)),
		"compliment_plain":   float64(g.intn(0, 200)),
		"compliment_cool":    float64(g.intn(0, 200)),
		"compliment_funny":   float64(g.intn(0, 200)),
		"compliment_writer":  float64(g.intn(0, 200)),
		"compliment_photos":  float64(g.intn(0, 200)),
	}
}

// YelpMerged unions the six Yelp tables into one stream with ground-truth
// entity labels — the synthetic multi-entity benchmark of §7. The tables
// share foreign keys (business_id across five tables, user_id across
// three) and collide on "name" (business vs. user), the properties that
// make naive similarity measures fail (Example 9).
func YelpMerged() *Generator {
	return &Generator{
		Name: "yelp-merged",
		Description: "union of the six Yelp tables: shared FKs, colliding name field, " +
			"6-entity ground truth",
		Entities: []string{"business", "checkin", "photo", "review", "tip", "user"},
		DefaultN: 6000,
		Generate: func(n int, seed int64) []Record {
			g := newGen(seed)
			weights := []float64{10, 10, 10, 35, 15, 20}
			out := make([]Record, 0, n)
			for i := 0; i < n; i++ {
				switch g.weighted(weights) {
				case 0:
					out = append(out, record(g.yelpBusiness(), "business"))
				case 1:
					out = append(out, record(g.yelpCheckin(), "checkin"))
				case 2:
					out = append(out, record(g.yelpPhoto(), "photo"))
				case 3:
					out = append(out, record(g.yelpReview(), "review"))
				case 4:
					out = append(out, record(g.yelpTip(), "tip"))
				default:
					out = append(out, record(g.yelpUser(), "user"))
				}
			}
			return out
		},
	}
}
