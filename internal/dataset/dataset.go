// Package dataset provides seeded synthetic generators for the thirteen
// datasets of the paper's evaluation (Section 7). The real corpora
// (GitHub archive, Kaggle prescriptions, Twitter decahose, a Matrix
// Synapse dump, the NYT archive, a Wikidata dump, and the Yelp Open
// Dataset) are not redistributable, so each generator reproduces the
// *structural* phenomena the paper documents for its dataset — entity
// mixes, collection-like objects and their key-domain sizes, geo tuple
// arrays, nested-collection pivots, optional-field patterns, and soft
// functional dependencies. Schema discovery consumes only structure
// (kinds and key sets), never concrete values, so matching the structure
// statistics preserves the evaluated behavior.
//
// All generators are deterministic for a given seed.
package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"jxplain/internal/jsontype"
)

// Record is one generated JSON record.
type Record struct {
	// Value is the decoded JSON value (map[string]any / []any / primitives).
	Value any
	// Type is the structural type of Value.
	Type *jsontype.Type
	// Entity is the ground-truth entity label, or "" when the dataset has a
	// single entity.
	Entity string
}

// Generator describes one synthetic dataset.
type Generator struct {
	// Name is the registry key (e.g. "github", "yelp-business").
	Name string
	// Description summarizes the structural phenomena modeled.
	Description string
	// Entities lists the ground-truth entity labels (len 1 for
	// single-entity datasets).
	Entities []string
	// DefaultN is the record count used by the experiment harness.
	DefaultN int
	// Generate produces n records deterministically from seed.
	Generate func(n int, seed int64) []Record
}

// Types extracts the structural types of a record slice.
func Types(records []Record) []*jsontype.Type {
	out := make([]*jsontype.Type, len(records))
	for i := range records {
		out[i] = records[i].Type
	}
	return out
}

// Registry returns all generators in display order (the order of the
// paper's tables).
func Registry() []*Generator {
	return []*Generator{
		NYT(), Synapse(), Twitter(), GitHub(), Pharma(), Wikidata(),
		YelpBusiness(), YelpCheckin(), YelpPhotos(), YelpReview(), YelpTip(), YelpUser(),
		YelpMerged(),
	}
}

// ByName looks a generator up by its registry name, consulting both the
// paper-dataset registry and the wide scaling family.
func ByName(name string) (*Generator, bool) {
	for _, g := range Registry() {
		if g.Name == name {
			return g, true
		}
	}
	for _, g := range WideRegistry() {
		if g.Name == name {
			return g, true
		}
	}
	return nil, false
}

// Names returns the registry names in order.
func Names() []string {
	gens := Registry()
	out := make([]string, len(gens))
	for i, g := range gens {
		out[i] = g.Name
	}
	return out
}

// ---- generation helpers ----

// gen wraps a seeded source with the sampling utilities the generators
// share.
type gen struct {
	r *rand.Rand
}

func newGen(seed int64) *gen { return &gen{r: rand.New(rand.NewSource(seed))} }

// record finalizes a value into a Record.
func record(v any, entity string) Record {
	return Record{Value: v, Type: jsontype.MustFromValue(v), Entity: entity}
}

// pick returns one of the choices uniformly.
func (g *gen) pick(choices ...string) string { return choices[g.r.Intn(len(choices))] }

// chance reports true with probability p.
func (g *gen) chance(p float64) bool { return g.r.Float64() < p }

// intn returns a uniform int in [lo, hi].
func (g *gen) intn(lo, hi int) int { return lo + g.r.Intn(hi-lo+1) }

// num returns a float in [0, scale).
func (g *gen) num(scale float64) float64 { return g.r.Float64() * scale }

// id returns a synthetic identifier string with the given prefix.
func (g *gen) id(prefix string) string {
	return fmt.Sprintf("%s_%08x", prefix, g.r.Uint32())
}

// word returns a short pseudo-word.
func (g *gen) word() string {
	syllables := []string{"ta", "ri", "no", "ke", "lu", "ma", "se", "vi", "po", "da"}
	n := g.intn(2, 4)
	out := ""
	for i := 0; i < n; i++ {
		out += syllables[g.r.Intn(len(syllables))]
	}
	return out
}

// sentence returns a few pseudo-words joined by spaces.
func (g *gen) sentence(words int) string {
	out := ""
	for i := 0; i < words; i++ {
		if i > 0 {
			out += " "
		}
		out += g.word()
	}
	return out
}

// date returns a timestamp-like string.
func (g *gen) date() string {
	return fmt.Sprintf("20%02d-%02d-%02dT%02d:%02d:%02dZ",
		g.intn(10, 23), g.intn(1, 12), g.intn(1, 28),
		g.intn(0, 23), g.intn(0, 59), g.intn(0, 59))
}

// weighted picks an index according to the weights (which need not sum to
// 1); weights must be non-empty and non-negative with positive sum.
func (g *gen) weighted(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := g.r.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

// subsetKeys samples a collection-object key subset: count keys drawn
// zipf-ishly from a domain rendered as prefix_%04d, deduplicated.
func (g *gen) subsetKeys(prefix string, domain, count int) []string {
	seen := map[int]bool{}
	out := make([]string, 0, count)
	for len(out) < count {
		// Squaring a uniform variate skews toward low indices (popular
		// drugs / frequent languages), like real usage distributions.
		u := g.r.Float64()
		idx := int(u * u * float64(domain))
		if idx >= domain {
			idx = domain - 1
		}
		if seen[idx] {
			// Fall back to a uniform probe so small domains terminate.
			idx = g.r.Intn(domain)
			if seen[idx] {
				continue
			}
		}
		seen[idx] = true
		out = append(out, fmt.Sprintf("%s_%04d", prefix, idx))
	}
	sort.Strings(out)
	return out
}
