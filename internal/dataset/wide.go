package dataset

import "fmt"

// Wide synthesizes a flat record stream with a controlled number of
// ground-truth entities, built for the entity-discovery scaling benchmark:
// the interesting axis there is the number of *distinct key sets* reaching
// Bimax, which real datasets cap at a few thousand. Every entity carries a
// disjoint block of mandatory keys plus a block of optional keys sampled
// per record, so distinct-set count grows with both entity count and
// record count (up to 2^wideOptional subsets per entity). A small fraction
// of records additionally carry one of two shared keys, so entities
// overlap enough that GreedyMerge has covers to consider — but the shared
// keys are deliberately occasional: a key present in every record would
// put every key set in one posting list and turn the inverted index's
// candidate walk back into a full scan.
func Wide(nEntities int) *Generator {
	return &Generator{
		Name: fmt.Sprintf("wide-%d", nEntities),
		Description: fmt.Sprintf("synthetic flat records over %d entities with "+
			"per-record optional-key subsets; entity-scaling benchmark input", nEntities),
		Entities: wideEntityNames(nEntities),
		DefaultN: 50 * nEntities,
		Generate: func(n int, seed int64) []Record {
			g := newGen(seed)
			out := make([]Record, 0, n)
			for i := 0; i < n; i++ {
				e := g.r.Intn(nEntities)
				rec := map[string]any{}
				for k := 0; k < wideMandatory; k++ {
					rec[wideKey(e, "k", k)] = g.num(100)
				}
				for k := 0; k < wideOptional; k++ {
					if g.chance(0.5) {
						rec[wideKey(e, "o", k)] = g.word()
					}
				}
				if g.chance(0.15) {
					rec[fmt.Sprintf("shared%d", g.r.Intn(2))] = g.id("s")
				}
				out = append(out, record(rec, wideEntityName(e)))
			}
			return out
		},
	}
}

const (
	wideMandatory = 4
	wideOptional  = 6
)

func wideKey(entity int, class string, k int) string {
	return fmt.Sprintf("e%d_%s%d", entity, class, k)
}

func wideEntityName(e int) string { return fmt.Sprintf("entity%d", e) }

func wideEntityNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = wideEntityName(i)
	}
	return out
}

// WideRegistry returns the wide generators used by the entity-scaling
// benchmark. They are deliberately not part of Registry: the golden
// byte-equivalence suite and the experiment defaults iterate the paper's
// thirteen datasets, and the wide family is a synthetic scaling probe, not
// an evaluation corpus.
func WideRegistry() []*Generator {
	return []*Generator{Wide(16), Wide(64), Wide(256)}
}
