package dataset

import (
	"reflect"
	"testing"

	"jxplain/internal/jsontype"
)

func TestRegistryComplete(t *testing.T) {
	names := Names()
	want := []string{
		"nyt", "synapse", "twitter", "github", "pharma", "wikidata",
		"yelp-business", "yelp-checkin", "yelp-photos", "yelp-review",
		"yelp-tip", "yelp-user", "yelp-merged",
	}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("registry = %v", names)
	}
	for _, g := range Registry() {
		if g.DefaultN <= 0 || g.Description == "" || len(g.Entities) == 0 {
			t.Errorf("%s: incomplete metadata", g.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if g, ok := ByName("pharma"); !ok || g.Name != "pharma" {
		t.Error("ByName(pharma) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) should fail")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, g := range Registry() {
		a := g.Generate(50, 42)
		b := g.Generate(50, 42)
		if len(a) != 50 || len(b) != 50 {
			t.Fatalf("%s: wrong record count", g.Name)
		}
		for i := range a {
			if !jsontype.Equal(a[i].Type, b[i].Type) {
				t.Fatalf("%s: record %d types differ across runs", g.Name, i)
			}
			if a[i].Entity != b[i].Entity {
				t.Fatalf("%s: record %d entity labels differ", g.Name, i)
			}
		}
		c := g.Generate(50, 43)
		same := true
		for i := range a {
			if !jsontype.Equal(a[i].Type, c[i].Type) {
				same = false
				break
			}
		}
		if same && g.Name != "yelp-photos" && g.Name != "yelp-review" && g.Name != "yelp-tip" {
			t.Errorf("%s: different seeds should usually change structure", g.Name)
		}
	}
}

func TestGeneratorEntitiesAreLabeled(t *testing.T) {
	for _, g := range Registry() {
		valid := map[string]bool{}
		for _, e := range g.Entities {
			valid[e] = true
		}
		for i, rec := range g.Generate(200, 7) {
			if !valid[rec.Entity] {
				t.Fatalf("%s: record %d has unknown entity %q", g.Name, i, rec.Entity)
			}
			if rec.Type == nil || rec.Value == nil {
				t.Fatalf("%s: record %d missing type/value", g.Name, i)
			}
			if rec.Type.Kind() != jsontype.KindObject {
				t.Fatalf("%s: record %d is not an object", g.Name, i)
			}
		}
	}
}

func TestMultiEntityDatasetsCoverAllEntities(t *testing.T) {
	for _, name := range []string{"github", "twitter", "synapse", "yelp-merged"} {
		g, _ := ByName(name)
		seen := map[string]bool{}
		for _, rec := range g.Generate(2000, 3) {
			seen[rec.Entity] = true
		}
		for _, e := range g.Entities {
			if !seen[e] {
				t.Errorf("%s: entity %q never generated in 2000 records", name, e)
			}
		}
	}
}

func TestTypesHelper(t *testing.T) {
	g, _ := ByName("yelp-photos")
	recs := g.Generate(10, 1)
	types := Types(recs)
	if len(types) != 10 {
		t.Fatal("Types length mismatch")
	}
	for i := range types {
		if types[i] != recs[i].Type {
			t.Fatal("Types should extract record types")
		}
	}
}

func TestPharmaStructure(t *testing.T) {
	g, _ := ByName("pharma")
	recs := g.Generate(100, 5)
	distinct := map[string]bool{}
	for _, rec := range recs {
		distinct[rec.Type.Canon()] = true
		counts := rec.Type.Field("cms_prescription_counts")
		if counts == nil || counts.Kind() != jsontype.KindObject || counts.Len() < 8 {
			t.Fatal("pharma record missing prescription counts")
		}
		for _, f := range counts.Fields() {
			if f.Type.Kind() != jsontype.KindNumber {
				t.Fatal("prescription counts must be numbers")
			}
		}
	}
	// Nearly every record has a unique type (the paper's observation).
	if len(distinct) < 95 {
		t.Errorf("expected ~unique types, got %d distinct of 100", len(distinct))
	}
}

func TestTwitterStructure(t *testing.T) {
	g, _ := ByName("twitter")
	recs := g.Generate(1000, 5)
	var deletes, geos, retweets int
	for _, rec := range recs {
		if rec.Entity == "delete" {
			deletes++
			if rec.Type.Field("delete") == nil {
				t.Fatal("delete event missing delete field")
			}
			continue
		}
		if geo := rec.Type.Field("geo"); geo != nil && geo.Kind() == jsontype.KindObject {
			geos++
			coords := geo.Field("coordinates")
			if coords == nil || coords.Kind() != jsontype.KindArray || coords.Len() != 2 {
				t.Fatal("geo coordinates must be a 2-element array")
			}
		}
		if rec.Type.Field("retweeted_status") != nil {
			retweets++
			// Bounded recursion: the nested tweet must not itself nest.
			if rec.Type.Field("retweeted_status").Field("retweeted_status") != nil {
				t.Fatal("retweet recursion must be bounded")
			}
		}
	}
	if deletes == 0 || geos == 0 || retweets == 0 {
		t.Errorf("expected all phenomena: deletes=%d geos=%d retweets=%d", deletes, geos, retweets)
	}
}

func TestSynapseSignaturesShape(t *testing.T) {
	g, _ := ByName("synapse")
	for _, rec := range g.Generate(50, 9) {
		sig := rec.Type.Field("signatures")
		if sig == nil || sig.Kind() != jsontype.KindObject || sig.Len() == 0 {
			t.Fatal("synapse record missing signatures")
		}
		for _, srv := range sig.Fields() {
			if srv.Type.Kind() != jsontype.KindObject || srv.Type.Len() == 0 {
				t.Fatal("signatures must nest key→sig objects")
			}
			for _, k := range srv.Type.Fields() {
				if k.Type.Kind() != jsontype.KindString {
					t.Fatal("signature leaves must be strings")
				}
			}
		}
	}
}

func TestYelpCheckinPivotShape(t *testing.T) {
	g, _ := ByName("yelp-checkin")
	days := map[string]bool{"Mon": true, "Tue": true, "Wed": true, "Thu": true,
		"Fri": true, "Sat": true, "Sun": true}
	for _, rec := range g.Generate(50, 2) {
		tm := rec.Type.Field("time")
		if tm == nil || tm.Kind() != jsontype.KindObject || tm.Len() == 0 {
			t.Fatal("checkin record missing time pivot")
		}
		for _, day := range tm.Fields() {
			if !days[day.Key] {
				t.Fatalf("unexpected day key %q", day.Key)
			}
			for _, hour := range day.Type.Fields() {
				if hour.Type.Kind() != jsontype.KindNumber {
					t.Fatal("checkin counts must be numbers")
				}
			}
		}
	}
}

func TestYelpBusinessSoftFD(t *testing.T) {
	g, _ := ByName("yelp-business")
	recs := g.Generate(4000, 11)
	var salons, salonsWithAppt, others, othersWithAppt int
	for _, rec := range recs {
		attrs := rec.Type.Field("attributes")
		cats := rec.Type.Field("categories")
		isSalon := false
		if cats != nil {
			// Categories is a string; we detect salons via the attribute
			// pattern instead: salons carry AcceptsInsurance/HairSpecializesIn.
			_ = cats
		}
		if attrs == nil {
			continue
		}
		if attrs.HasField("AcceptsInsurance") || attrs.HasField("HairSpecializesIn") {
			isSalon = true
		}
		if isSalon {
			salons++
			if attrs.HasField("ByAppointmentOnly") {
				salonsWithAppt++
			}
		} else {
			others++
			if attrs.HasField("ByAppointmentOnly") {
				othersWithAppt++
			}
		}
	}
	if salons == 0 {
		t.Fatal("no salons generated")
	}
	if float64(salonsWithAppt)/float64(salons) < 0.9 {
		t.Errorf("salons should nearly always have ByAppointmentOnly: %d/%d", salonsWithAppt, salons)
	}
	if float64(othersWithAppt)/float64(others) > 0.05 {
		t.Errorf("non-salons should rarely have ByAppointmentOnly: %d/%d", othersWithAppt, others)
	}
}

func TestYelpUserTypeExplosion(t *testing.T) {
	g, _ := ByName("yelp-user")
	distinct := map[string]bool{}
	keysets := map[string]bool{}
	for _, rec := range g.Generate(500, 3) {
		distinct[rec.Type.Canon()] = true
		ks := ""
		for _, k := range rec.Type.Keys() {
			ks += k + ","
		}
		keysets[ks] = true
	}
	if len(distinct) < 50 {
		t.Errorf("friends/elite arrays should explode distinct types: %d", len(distinct))
	}
	if len(keysets) != 1 {
		t.Errorf("user keys must be stable: %d key sets", len(keysets))
	}
}

func TestYelpMergedMix(t *testing.T) {
	g, _ := ByName("yelp-merged")
	counts := map[string]int{}
	for _, rec := range g.Generate(3000, 13) {
		counts[rec.Entity]++
	}
	if len(counts) != 6 {
		t.Fatalf("expected 6 entities, got %v", counts)
	}
	if counts["review"] < counts["checkin"] {
		t.Error("reviews should dominate the mix")
	}
}

func TestGitHubSkewedEntitySizes(t *testing.T) {
	g, _ := ByName("github")
	counts := map[string]int{}
	for _, rec := range g.Generate(4000, 17) {
		counts[rec.Entity]++
	}
	if counts["PushEvent"] < 5*counts["ReleaseEvent"] {
		t.Errorf("entity sizes should be wildly skewed: %v", counts)
	}
}

func TestWikidataDepth(t *testing.T) {
	g, _ := ByName("wikidata")
	maxDepth := 0
	for _, rec := range g.Generate(30, 21) {
		if d := rec.Type.Depth(); d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth < 5 {
		t.Errorf("wikidata should nest deeply, got depth %d", maxDepth)
	}
}

func TestNYTMultimediaMixesLayouts(t *testing.T) {
	g, _ := ByName("nyt")
	layouts := map[string]bool{}
	for _, rec := range g.Generate(300, 23) {
		mm := rec.Type.Field("multimedia")
		if mm == nil {
			t.Fatal("missing multimedia")
		}
		for _, e := range mm.Elems() {
			key := ""
			for _, k := range e.Keys() {
				key += k + ","
			}
			layouts[key] = true
		}
	}
	if len(layouts) < 3 {
		t.Errorf("multimedia should mix ≥3 layouts, got %d", len(layouts))
	}
}
