package dataset

// NYT models the New York Times article archive [31]: article records
// whose multimedia array is a multi-entity nested collection (§3.3 —
// several distinct summary-metadata layouts appear in one array), plus
// headline/byline tuples and keyword object arrays.
func NYT() *Generator {
	return &Generator{
		Name: "nyt",
		Description: "article archive: multi-entity multimedia arrays, headline/byline " +
			"tuples, keyword object arrays",
		Entities: []string{"article"},
		DefaultN: 3000,
		Generate: func(n int, seed int64) []Record {
			g := newGen(seed)
			out := make([]Record, 0, n)
			for i := 0; i < n; i++ {
				rec := map[string]any{
					"_id":              g.id("nyt"),
					"web_url":          "https://www.nytimes.example/" + g.word(),
					"snippet":          g.sentence(10),
					"abstract":         g.sentence(12),
					"source":           "The New York Times",
					"pub_date":         g.date(),
					"document_type":    g.pick("article", "multimedia"),
					"type_of_material": g.pick("News", "Op-Ed", "Review", "Obituary"),
					"word_count":       float64(g.intn(50, 3000)),
					"headline":         g.nytHeadline(),
					"byline":           g.nytByline(),
					"keywords":         g.nytKeywords(),
					"multimedia":       g.nytMultimedia(),
				}
				if g.chance(0.8) {
					rec["lead_paragraph"] = g.sentence(20)
				}
				if g.chance(0.6) {
					rec["print_page"] = float64(g.intn(1, 40))
				}
				if g.chance(0.7) {
					rec["news_desk"] = g.pick("Foreign", "Metro", "Culture", "Business", "Sports")
				}
				if g.chance(0.7) {
					rec["section_name"] = g.pick("World", "U.S.", "Arts", "Business Day", "Sports")
				}
				out = append(out, record(rec, "article"))
			}
			return out
		},
	}
}

func (g *gen) nytHeadline() map[string]any {
	h := map[string]any{
		"main": g.sentence(6),
	}
	if g.chance(0.3) {
		h["kicker"] = g.sentence(2)
	}
	if g.chance(0.2) {
		h["content_kicker"] = g.sentence(2)
	}
	if g.chance(0.5) {
		h["print_headline"] = g.sentence(5)
	}
	return h
}

func (g *gen) nytByline() map[string]any {
	nPeople := g.intn(0, 3)
	people := make([]any, nPeople)
	for i := range people {
		p := map[string]any{
			"firstname":    g.word(),
			"lastname":     g.word(),
			"role":         "reported",
			"organization": "",
			"rank":         float64(i + 1),
		}
		if g.chance(0.2) {
			p["middlename"] = g.word()
		}
		if g.chance(0.1) {
			p["qualifier"] = g.word()
		}
		people[i] = p
	}
	b := map[string]any{"person": people}
	if g.chance(0.9) {
		b["original"] = "By " + g.word()
	}
	if g.chance(0.1) {
		b["organization"] = g.word()
	}
	return b
}

func (g *gen) nytKeywords() []any {
	n := g.intn(0, 8)
	out := make([]any, n)
	for i := range out {
		out[i] = map[string]any{
			"name":  g.pick("subject", "glocations", "persons", "organizations"),
			"value": g.sentence(2),
			"rank":  float64(i + 1),
			"major": g.pick("N", "Y"),
		}
	}
	return out
}

// nytMultimedia builds the §3.3 multi-entity nested collection: three
// distinct metadata layouts mixed in one array.
func (g *gen) nytMultimedia() []any {
	n := g.intn(0, 6)
	out := make([]any, n)
	for i := range out {
		switch g.r.Intn(3) {
		case 0: // image rendition
			out[i] = map[string]any{
				"rank":    float64(i),
				"subtype": g.pick("xlarge", "thumbnail", "wide"),
				"type":    "image",
				"url":     "images/" + g.word() + ".jpg",
				"height":  float64(g.intn(50, 2000)),
				"width":   float64(g.intn(50, 3000)),
				"legacy": map[string]any{
					"xlarge":      "images/" + g.word() + ".jpg",
					"xlargewidth": float64(g.intn(50, 3000)),
				},
			}
		case 1: // video summary
			out[i] = map[string]any{
				"rank":     float64(i),
				"type":     "video",
				"url":      "video/" + g.word() + ".mp4",
				"duration": float64(g.intn(10, 600)),
				"caption":  g.sentence(6),
				"credit":   g.word(),
			}
		default: // slideshow pointer
			out[i] = map[string]any{
				"rank":        float64(i),
				"type":        "slideshow",
				"url":         "slideshow/" + g.word(),
				"slide_count": float64(g.intn(2, 30)),
			}
		}
	}
	return out
}
