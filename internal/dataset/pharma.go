package dataset

// Pharma models the prescription-based-prediction dataset [25]: one record
// per provider with a fixed provider_variables tuple and a
// cms_prescription_counts object mapping drug names (from a 2397-name
// domain) to counts. The collection-like object means nearly every record
// has a distinct type — L-reduction degenerates, K-reduction makes every
// drug an optional field and cannot generalize to unseen drugs, while
// JXPLAIN detects the collection and generalizes (the paper's Table 1
// recall outlier).
func Pharma() *Generator {
	return &Generator{
		Name: "pharma",
		Description: "per-provider prescription counts: collection-like object over a " +
			"2397-drug domain; nearly every record a unique type",
		Entities: []string{"provider"},
		DefaultN: 3000,
		Generate: func(n int, seed int64) []Record {
			g := newGen(seed)
			out := make([]Record, 0, n)
			for i := 0; i < n; i++ {
				counts := map[string]any{}
				for _, drug := range g.subsetKeys("DRUG", 2397, g.intn(8, 40)) {
					counts[drug] = float64(g.intn(11, 500))
				}
				rec := map[string]any{
					"npi": float64(g.intn(1_000_000_000, 1_999_999_999)),
					"provider_variables": map[string]any{
						"brand_name_rx_count": float64(g.intn(0, 900)),
						"generic_rx_count":    float64(g.intn(0, 4000)),
						"gender":              g.pick("M", "F"),
						"region":              g.pick("South", "West", "Northeast", "Midwest"),
						"settlement_type":     g.pick("urban", "non-urban"),
						"specialty":           g.pick("Cardiology", "Family", "Internal", "Oncology", "Psychiatry"),
						"years_practicing":    float64(g.intn(1, 50)),
					},
					"cms_prescription_counts": counts,
				}
				out = append(out, record(rec, "provider"))
			}
			return out
		},
	}
}
