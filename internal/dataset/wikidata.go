package dataset

// Wikidata models the Wikidata entity dump [36]: deeply nested records
// with language-keyed labels/descriptions/aliases collection objects,
// property-keyed claims collection objects holding arrays of statement
// objects, and site-keyed sitelinks — the dataset whose size and nesting
// exhausted L-reduce and Bimax-Naive in the paper (Table 4 †).
func Wikidata() *Generator {
	return &Generator{
		Name: "wikidata",
		Description: "entity dump: language-keyed label collections, property-keyed " +
			"claim collections of statement arrays, deep nesting",
		Entities: []string{"item"},
		DefaultN: 1500,
		Generate: func(n int, seed int64) []Record {
			g := newGen(seed)
			out := make([]Record, 0, n)
			for i := 0; i < n; i++ {
				rec := map[string]any{
					"type":         "item",
					"id":           g.id("Q"),
					"labels":       g.wikiLangMap(false),
					"descriptions": g.wikiLangMap(false),
					"aliases":      g.wikiLangMap(true),
					"claims":       g.wikiClaims(),
					"sitelinks":    g.wikiSitelinks(),
					"lastrevid":    float64(g.intn(1, 1_500_000_000)),
					"modified":     g.date(),
				}
				out = append(out, record(rec, "item"))
			}
			return out
		},
	}
}

// wikiLangMap builds a language-keyed collection object; aliased form maps
// each language to an array of term objects instead of a single one.
func (g *gen) wikiLangMap(asArray bool) map[string]any {
	out := map[string]any{}
	for _, lang := range g.subsetKeys("lang", 45, g.intn(1, 8)) {
		term := map[string]any{"language": lang, "value": g.sentence(2)}
		if asArray {
			n := g.intn(1, 3)
			arr := make([]any, n)
			for i := range arr {
				arr[i] = map[string]any{"language": lang, "value": g.word()}
			}
			out[lang] = arr
		} else {
			out[lang] = term
		}
	}
	return out
}

// wikiClaims builds the property-keyed collection object of statement
// arrays — the "Linked Data Interface" structure where each attribute is
// an integer-keyed reference.
func (g *gen) wikiClaims() map[string]any {
	out := map[string]any{}
	for _, prop := range g.subsetKeys("P", 220, g.intn(2, 12)) {
		n := g.intn(1, 3)
		statements := make([]any, n)
		for i := range statements {
			statements[i] = g.wikiStatement(prop)
		}
		out[prop] = statements
	}
	return out
}

func (g *gen) wikiStatement(prop string) map[string]any {
	snak := map[string]any{
		"snaktype": g.pick("value", "somevalue", "novalue"),
		"property": prop,
		"datatype": g.pick("wikibase-item", "string", "time", "quantity"),
	}
	if g.chance(0.85) {
		snak["datavalue"] = map[string]any{
			"value": g.word(),
			"type":  "string",
		}
	}
	st := map[string]any{
		"mainsnak": snak,
		"type":     "statement",
		"id":       g.id("stmt"),
		"rank":     g.pick("normal", "preferred", "deprecated"),
	}
	if g.chance(0.25) {
		refs := make([]any, 1)
		refs[0] = map[string]any{
			"hash":        g.id("h"),
			"snaks_order": []any{prop},
		}
		st["references"] = refs
	}
	return st
}

func (g *gen) wikiSitelinks() map[string]any {
	out := map[string]any{}
	for _, site := range g.subsetKeys("wiki", 60, g.intn(1, 6)) {
		badges := make([]any, g.intn(0, 2))
		for i := range badges {
			badges[i] = g.id("Q")
		}
		out[site] = map[string]any{
			"site":   site,
			"title":  g.sentence(2),
			"badges": badges,
		}
	}
	return out
}
