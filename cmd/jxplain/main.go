// Command jxplain discovers a collection-level schema from a stream of
// JSON records (JSONL or concatenated JSON) and prints it.
//
// Usage:
//
//	jxplain [flags] [file]        # reads stdin when no file is given
//
// Flags select the algorithm (jxplain, bimax-naive, k-reduce, l-reduce),
// the entropy threshold, and the output format: the paper's compact
// notation (default), a json-schema.org document (-format jsonschema), or
// the native round-trip encoding (-format native) consumable by
// jxvalidate.
//
// The JXPLAIN algorithms ingest the input as a bounded-memory stream:
// records are decoded in chunks by a worker pool (-workers, -chunk) and
// folded into mergeable sketches, so arbitrarily large inputs never
// materialize in memory. -stats reports throughput and peak heap
// alongside the schema statistics.
//
// For streams whose *distinct structure* itself grows without bound,
// -capacity caps the retained types in a weighted reservoir, -window and
// -ring keep decisions over a rolling horizon of statistics windows,
// -decay exponentially ages the retained counters, and -window-drift
// logs structural movement between consecutive windows to stderr.
//
// Accumulated state can cross process boundaries through the versioned
// sketch wire format: -emit-sketch writes the accumulator instead of a
// schema, and repeated -merge-sketch flags seed the accumulator from
// sketch files (merged in flag order, as a parallel tree when
// -reduce-workers allows) before any input is ingested — together they
// form a map/reduce pair (see also cmd/jxshard, the dedicated scale-out
// driver).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"jxplain/internal/core"
	"jxplain/internal/drift"
	"jxplain/internal/ingest"
	"jxplain/internal/jsontype"
	"jxplain/internal/merge"
	"jxplain/internal/metrics"
	"jxplain/internal/schema"
	"jxplain/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "jxplain:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("jxplain", flag.ContinueOnError)
	algorithm := fs.String("algorithm", "jxplain",
		"extractor: jxplain, bimax-naive, k-reduce, or l-reduce")
	format := fs.String("format", "pretty",
		"output: pretty (paper notation), jsonschema, or native")
	threshold := fs.Float64("threshold", 1.0,
		"key-space entropy threshold for collection detection (natural log)")
	noArrayTuples := fs.Bool("no-array-tuples", false,
		"treat every array as a collection (disable §5.4 detection)")
	noObjectColls := fs.Bool("no-object-collections", false,
		"treat every object as a tuple (disable §5.1 detection)")
	iterative := fs.Float64("iterative", 0,
		"run the §4.2 sampling loop with this seed fraction (0 = train on everything)")
	jsonl := fs.Bool("jsonl", false,
		"treat input as strict JSONL (line-framed chunking, line-numbered errors)")
	workers := fs.Int("workers", 0,
		"decode workers for streaming ingestion (0 = one per core)")
	chunk := fs.Int("chunk", 0,
		"records per ingestion chunk (0 = default 2048)")
	seed := fs.Int64("seed", 1, "seed for sampling and k-means")
	statsF := fs.Bool("stats", false, "print schema statistics to stderr")
	emitSketch := fs.String("emit-sketch", "",
		"write the accumulated sketch (wire format) to this file instead of a schema (- for stdout)")
	var mergeSketches sketchList
	fs.Var(&mergeSketches, "merge-sketch",
		"seed the accumulator from this sketch file before ingesting input (repeatable; merged in flag order)")
	reduceWorkers := fs.Int("reduce-workers", 0,
		"concurrent -merge-sketch workers (0 = one per core, 1 = sequential)")
	capacity := fs.Int("capacity", 0,
		"bound distinct-type state to a weighted reservoir of this many types (0 = exact)")
	window := fs.Int("window", 0,
		"close a statistics window every N records (0 = one cumulative window)")
	ring := fs.Int("ring", 0,
		"retain this many closed windows for decisions (requires -window; 0 = no ring)")
	decay := fs.Float64("decay", 0,
		"exponential decay factor in (0,1) applied at every window rotation (requires -window)")
	windowDrift := fs.Bool("window-drift", false,
		"log windowed structural drift events to stderr (requires -ring)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *algorithm {
	case "jxplain", "bimax-naive", "k-reduce", "l-reduce":
	default:
		return fmt.Errorf("unknown algorithm %q", *algorithm)
	}

	input := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		input = f
	} else if len(mergeSketches) > 0 {
		// Reducing sketch files needs no record stream; don't block on stdin.
		input = nil
	}

	streaming := (*algorithm == "jxplain" || *algorithm == "bimax-naive") &&
		!(*iterative > 0 && *iterative < 1)
	if (*emitSketch != "" || len(mergeSketches) > 0) && !streaming {
		return fmt.Errorf("-emit-sketch/-merge-sketch require a streaming extractor (jxplain or bimax-naive, without -iterative)")
	}
	bounds := core.Bounds{
		ReservoirCapacity: *capacity,
		WindowRecords:     *window,
		WindowCount:       *ring,
		DecayFactor:       *decay,
	}
	if bounds != (core.Bounds{}) {
		if !streaming {
			return fmt.Errorf("-capacity/-window/-ring/-decay require a streaming extractor (jxplain or bimax-naive, without -iterative)")
		}
		if (*ring > 0 || *decay != 0) && *window <= 0 {
			return fmt.Errorf("-ring and -decay need a -window cadence")
		}
		if *decay != 0 && !(*decay > 0 && *decay < 1) {
			return fmt.Errorf("-decay must be in (0, 1)")
		}
	}
	if *windowDrift && *ring <= 0 {
		return fmt.Errorf("-window-drift requires a -ring of closed windows")
	}

	var s schema.Schema
	records := 0
	distinct := 0
	boundedStats := ""
	start := time.Now()
	var sampler *stats.MemSampler
	if *statsF {
		sampler = stats.StartMemSampler(0)
		defer sampler.Stop()
	}

	if streaming {
		cfg := configFor(*algorithm, *threshold, !*noArrayTuples, !*noObjectColls)
		cfg.Seed = *seed
		cfg.Bounds = bounds
		acc := core.NewAccumulator(cfg)
		if *windowDrift {
			drift.NewWindowMonitor(cfg).Bind(acc, func(ev *drift.WindowEvent) {
				fmt.Fprintln(stderr, ev.String())
			})
		}
		datas := make([][]byte, len(mergeSketches))
		for i, path := range mergeSketches {
			data, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			datas[i] = data
		}
		if err := acc.MergeSketches(datas, *reduceWorkers); err != nil {
			var merr *core.SketchMergeError
			if errors.As(err, &merr) && merr.Index < len(mergeSketches) {
				return fmt.Errorf("merging sketch %s: %w", mergeSketches[merr.Index], merr.Err)
			}
			return fmt.Errorf("merging sketches: %w", err)
		}
		if input != nil {
			// An add is atomic with respect to windows, so with a window
			// cadence the default chunk size must not exceed it — otherwise
			// rotations happen at chunk granularity, not the configured one.
			// An explicit -chunk is respected as given.
			if *chunk == 0 && *window > 0 && *window < 2048 {
				*chunk = *window
			}
			opts := ingest.Options{ChunkSize: *chunk, Workers: *workers, JSONL: *jsonl}
			if _, err := ingest.Fold(context.Background(), input, opts, acc); err != nil {
				return fmt.Errorf("decoding records: %w", err)
			}
		}
		if acc.Records() == 0 {
			return fmt.Errorf("no records in input")
		}
		records, distinct = acc.Records(), acc.Distinct()
		if r := acc.Reservoir(); r != nil {
			boundedStats += fmt.Sprintf("reservoir: seen=%d retained=%d dropped=%d evictions=%d\n",
				r.Seen(), r.Distinct(), r.Dropped(), r.Evictions())
		}
		if w := acc.WindowsClosed(); w > 0 {
			boundedStats += fmt.Sprintf("windows closed: %d\n", w)
		}
		if *emitSketch != "" {
			data, err := acc.Marshal()
			if err != nil {
				return err
			}
			if *emitSketch == "-" {
				_, err := stdout.Write(data)
				return err
			}
			return os.WriteFile(*emitSketch, data, 0o644)
		}
		s = acc.Finish()
	} else {
		var types []*jsontype.Type
		var err error
		if *jsonl {
			types, err = jsontype.DecodeLines(input, *workers)
		} else {
			types, err = jsontype.DecodeAll(input)
		}
		if err != nil {
			return fmt.Errorf("decoding records: %w", err)
		}
		if len(types) == 0 {
			return fmt.Errorf("no records in input")
		}
		records = len(types)

		if *iterative > 0 && *iterative < 1 {
			if *algorithm != "jxplain" && *algorithm != "bimax-naive" {
				return fmt.Errorf("-iterative requires a JXPLAIN algorithm")
			}
			cfg := configFor(*algorithm, *threshold, !*noArrayTuples, !*noObjectColls)
			var report core.IterativeReport
			s, report = core.IterativeDiscover(types, cfg, *iterative, 10, *seed)
			if *statsF {
				fmt.Fprintf(stderr, "iterative: rounds=%d converged=%v final sample=%d of %d\n",
					report.Rounds, report.Converged,
					report.SampleSizes[len(report.SampleSizes)-1], len(types))
			}
		} else {
			s, err = discover(*algorithm, types, *threshold, !*noArrayTuples, !*noObjectColls)
			if err != nil {
				return err
			}
		}
	}
	s = schema.Simplify(s)

	if *statsF {
		elapsed := time.Since(start)
		peak := sampler.Stop()
		fmt.Fprintf(stderr, "records: %d\nschema nodes: %d\nentities: %d\nschema entropy (log2 types): %.2f\n",
			records, schema.Size(s), schema.Entities(s), metrics.SchemaEntropy(s))
		if streaming {
			fmt.Fprintf(stderr, "distinct types: %d\n", distinct)
			fmt.Fprint(stderr, boundedStats)
		}
		fmt.Fprintf(stderr, "elapsed: %s\nthroughput: %.0f records/s\npeak heap: %.1f MiB\n",
			elapsed.Round(time.Millisecond), float64(records)/elapsed.Seconds(),
			float64(peak)/(1<<20))
	}

	switch *format {
	case "pretty":
		fmt.Fprintln(stdout, s.String())
	case "jsonschema":
		data, err := schema.MarshalJSONSchema(s)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(data))
	case "native":
		data, err := schema.Marshal(s)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(data))
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
	return nil
}

// sketchList collects repeated -merge-sketch flags in order.
type sketchList []string

func (s *sketchList) String() string { return fmt.Sprint([]string(*s)) }

func (s *sketchList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func configFor(algorithm string, threshold float64, arrayTuples, objectColls bool) core.Config {
	cfg := core.Default()
	cfg.Detection.Threshold = threshold
	cfg.DetectArrayTuples = arrayTuples
	cfg.DetectObjectCollections = objectColls
	if algorithm == "bimax-naive" {
		cfg.Partition = core.BimaxNaive
	}
	return cfg
}

func discover(algorithm string, types []*jsontype.Type, threshold float64, arrayTuples, objectColls bool) (schema.Schema, error) {
	cfg := configFor(algorithm, threshold, arrayTuples, objectColls)
	switch algorithm {
	case "jxplain", "bimax-naive":
		return core.PipelineTypes(types, cfg), nil
	case "k-reduce":
		return merge.FoldK(types, 0), nil
	case "l-reduce":
		bag := &jsontype.Bag{}
		for _, t := range types {
			bag.Add(t)
		}
		return merge.Naive(bag), nil
	}
	return nil, fmt.Errorf("unknown algorithm %q", algorithm)
}
