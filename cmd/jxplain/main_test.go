package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `
{"ts":7,"event":"login","user":{"name":"bob","geo":[1.1,2.2]}}
{"ts":8,"event":"serve","files":["a.txt","b.txt"]}
`

func TestRunPretty(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ts: ℝ") {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunJSONSchema(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-format", "jsonschema"}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "json-schema.org") {
		t.Error("missing $schema header")
	}
}

func TestRunNative(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-format", "native"}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"node"`) {
		t.Error("missing native encoding")
	}
}

func TestRunAlgorithms(t *testing.T) {
	for _, alg := range []string{"jxplain", "bimax-naive", "k-reduce", "l-reduce"} {
		var out strings.Builder
		if err := run([]string{"-algorithm", alg}, strings.NewReader(sample), &out); err != nil {
			t.Errorf("%s: %v", alg, err)
		}
		if out.Len() == 0 {
			t.Errorf("%s: empty output", alg)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-algorithm", "bogus"},
		{"-format", "bogus"},
	}
	for _, args := range cases {
		if err := run(args, strings.NewReader(sample), &strings.Builder{}); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
	if err := run(nil, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("empty input should fail")
	}
	if err := run(nil, strings.NewReader(`{"a":`), &strings.Builder{}); err == nil {
		t.Error("malformed input should fail")
	}
	if err := run([]string{"/does/not/exist.jsonl"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("missing file should fail")
	}
}

func TestRunFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.jsonl")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{path}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Error("empty output")
	}
}

func TestJSONLFlag(t *testing.T) {
	var serial, parallel strings.Builder
	if err := run(nil, strings.NewReader(sample), &serial); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-jsonl"}, strings.NewReader(sample), &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("jsonl decode changed the schema:\n%s\n%s", serial.String(), parallel.String())
	}
	// Line errors carry line numbers.
	err := run([]string{"-jsonl"}, strings.NewReader("{\"a\":1}\n{bad\n"), &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v", err)
	}
}

func TestIterativeFlag(t *testing.T) {
	var data strings.Builder
	for i := 0; i < 300; i++ {
		data.WriteString(`{"a":1,"b":"x"}` + "\n")
	}
	data.WriteString(`{"a":1,"b":"x","rare":true}` + "\n")
	var out strings.Builder
	if err := run([]string{"-iterative", "0.02"}, strings.NewReader(data.String()), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "rare") {
		t.Errorf("iterative schema should cover the rare field: %q", out.String())
	}
	// Iterative only makes sense for the JXPLAIN algorithms.
	if err := run([]string{"-iterative", "0.02", "-algorithm", "k-reduce"},
		strings.NewReader(`{"a":1}`), &strings.Builder{}); err == nil {
		t.Error("-iterative with k-reduce should fail")
	}
}

func TestDetectionFlags(t *testing.T) {
	// Disabling array-tuple detection turns geo into a collection.
	var with, without strings.Builder
	geoSample := strings.Repeat(`{"geo":[1.5,2.5]}`+"\n", 10)
	if err := run(nil, strings.NewReader(geoSample), &with); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-no-array-tuples"}, strings.NewReader(geoSample), &without); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(with.String(), "[ℝ, ℝ]") {
		t.Errorf("expected geo tuple: %s", with.String())
	}
	if !strings.Contains(without.String(), "[ℝ]*") {
		t.Errorf("expected geo collection: %s", without.String())
	}
}
