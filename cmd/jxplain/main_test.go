package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `
{"ts":7,"event":"login","user":{"name":"bob","geo":[1.1,2.2]}}
{"ts":8,"event":"serve","files":["a.txt","b.txt"]}
`

// runOut runs the command with a discarded stderr.
func runOut(args []string, stdin string, out *strings.Builder) error {
	return run(args, strings.NewReader(stdin), out, &strings.Builder{})
}

func TestRunPretty(t *testing.T) {
	var out strings.Builder
	if err := runOut(nil, sample, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ts: ℝ") {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunJSONSchema(t *testing.T) {
	var out strings.Builder
	if err := runOut([]string{"-format", "jsonschema"}, sample, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "json-schema.org") {
		t.Error("missing $schema header")
	}
}

func TestRunNative(t *testing.T) {
	var out strings.Builder
	if err := runOut([]string{"-format", "native"}, sample, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"node"`) {
		t.Error("missing native encoding")
	}
}

func TestRunAlgorithms(t *testing.T) {
	for _, alg := range []string{"jxplain", "bimax-naive", "k-reduce", "l-reduce"} {
		var out strings.Builder
		if err := runOut([]string{"-algorithm", alg}, sample, &out); err != nil {
			t.Errorf("%s: %v", alg, err)
		}
		if out.Len() == 0 {
			t.Errorf("%s: empty output", alg)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-algorithm", "bogus"},
		{"-format", "bogus"},
	}
	for _, args := range cases {
		if err := runOut(args, sample, &strings.Builder{}); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
	if err := runOut(nil, "", &strings.Builder{}); err == nil {
		t.Error("empty input should fail")
	}
	if err := runOut(nil, `{"a":`, &strings.Builder{}); err == nil {
		t.Error("malformed input should fail")
	}
	if err := run([]string{"/does/not/exist.jsonl"}, strings.NewReader(""), &strings.Builder{}, &strings.Builder{}); err == nil {
		t.Error("missing file should fail")
	}
}

func TestRunFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.jsonl")
	if err := os.WriteFile(path, []byte(sample), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{path}, strings.NewReader(""), &out, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Error("empty output")
	}
}

func TestJSONLFlag(t *testing.T) {
	var serial, parallel strings.Builder
	if err := runOut(nil, sample, &serial); err != nil {
		t.Fatal(err)
	}
	if err := runOut([]string{"-jsonl"}, sample, &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("jsonl decode changed the schema:\n%s\n%s", serial.String(), parallel.String())
	}
	// Line errors carry line numbers.
	err := runOut([]string{"-jsonl"}, "{\"a\":1}\n{bad\n", &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v", err)
	}
}

func TestStreamingFlagsMatchDefault(t *testing.T) {
	var def strings.Builder
	if err := runOut(nil, sample, &def); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-workers", "1", "-chunk", "1"},
		{"-workers", "4", "-chunk", "1"},
		{"-workers", "3", "-chunk", "2", "-jsonl"},
	} {
		var got strings.Builder
		if err := runOut(args, sample, &got); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		if got.String() != def.String() {
			t.Errorf("%v changed the schema:\n%s\n%s", args, def.String(), got.String())
		}
	}
}

func TestStatsFlag(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-stats"}, strings.NewReader(sample), &out, &errOut); err != nil {
		t.Fatal(err)
	}
	stderr := errOut.String()
	for _, want := range []string{
		"records: 2", "schema nodes:", "entities:", "schema entropy",
		"distinct types: 2", "throughput:", "peak heap:",
	} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stats output missing %q:\n%s", want, stderr)
		}
	}
	if strings.Contains(out.String(), "records:") {
		t.Error("stats leaked into stdout")
	}
	// The stats path stays quiet without the flag.
	errOut.Reset()
	if err := run(nil, strings.NewReader(sample), &strings.Builder{}, &errOut); err != nil {
		t.Fatal(err)
	}
	if errOut.Len() != 0 {
		t.Errorf("unexpected stderr output: %q", errOut.String())
	}
}

func TestIterativeFlag(t *testing.T) {
	var data strings.Builder
	for i := 0; i < 300; i++ {
		data.WriteString(`{"a":1,"b":"x"}` + "\n")
	}
	data.WriteString(`{"a":1,"b":"x","rare":true}` + "\n")
	var out strings.Builder
	if err := runOut([]string{"-iterative", "0.02"}, data.String(), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "rare") {
		t.Errorf("iterative schema should cover the rare field: %q", out.String())
	}
	// The iterative report goes to the injected stderr writer.
	var errOut strings.Builder
	if err := run([]string{"-iterative", "0.02", "-stats"},
		strings.NewReader(data.String()), &strings.Builder{}, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "iterative: rounds=") {
		t.Errorf("missing iterative report: %q", errOut.String())
	}
	// Iterative only makes sense for the JXPLAIN algorithms.
	if err := runOut([]string{"-iterative", "0.02", "-algorithm", "k-reduce"},
		`{"a":1}`, &strings.Builder{}); err == nil {
		t.Error("-iterative with k-reduce should fail")
	}
}

func TestDetectionFlags(t *testing.T) {
	// Disabling array-tuple detection turns geo into a collection.
	var with, without strings.Builder
	geoSample := strings.Repeat(`{"geo":[1.5,2.5]}`+"\n", 10)
	if err := runOut(nil, geoSample, &with); err != nil {
		t.Fatal(err)
	}
	if err := runOut([]string{"-no-array-tuples"}, geoSample, &without); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(with.String(), "[ℝ, ℝ]") {
		t.Errorf("expected geo tuple: %s", with.String())
	}
	if !strings.Contains(without.String(), "[ℝ]*") {
		t.Errorf("expected geo collection: %s", without.String())
	}
}

// TestRunSketchMapReduce drives the CLI's map/reduce pair: two -emit-sketch
// runs over halves of the input, then a -merge-sketch reduce, must print
// the same schema as one run over everything.
func TestRunSketchMapReduce(t *testing.T) {
	lines := strings.Split(strings.TrimSpace(sample), "\n")
	dir := t.TempDir()
	var sketches []string
	for i, line := range lines {
		path := filepath.Join(dir, "shard"+string(rune('0'+i))+".jxsk")
		var out strings.Builder
		if err := runOut([]string{"-jsonl", "-emit-sketch", path}, line+"\n", &out); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		sketches = append(sketches, path)
	}

	var want strings.Builder
	if err := runOut(nil, sample, &want); err != nil {
		t.Fatal(err)
	}
	var got strings.Builder
	args := []string{}
	for _, s := range sketches {
		args = append(args, "-merge-sketch", s)
	}
	if err := runOut(args, "", &got); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("reduced schema diverges\ngot:  %s\nwant: %s", got.String(), want.String())
	}
}

// TestRunSketchSeedsFurtherIngestion checks -merge-sketch composes with a
// record stream: sketch of shard 1 plus shard 2 as an input file must
// equal everything at once. (With -merge-sketch and no positional file,
// stdin is deliberately not read — a pure reduce must not block on a
// terminal — so the continuing stream arrives as a file argument.)
func TestRunSketchSeedsFurtherIngestion(t *testing.T) {
	lines := strings.Split(strings.TrimSpace(sample), "\n")
	dir := t.TempDir()
	sketchPath := filepath.Join(dir, "first.jxsk")
	var out strings.Builder
	if err := runOut([]string{"-jsonl", "-emit-sketch", sketchPath}, lines[0]+"\n", &out); err != nil {
		t.Fatal(err)
	}
	restPath := filepath.Join(dir, "rest.jsonl")
	if err := os.WriteFile(restPath, []byte(lines[1]+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var got strings.Builder
	if err := runOut([]string{"-jsonl", "-merge-sketch", sketchPath, restPath}, "", &got); err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if err := runOut(nil, sample, &want); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("seeded run diverges\ngot:  %s\nwant: %s", got.String(), want.String())
	}
}

// TestRunSketchErrors pins the flag-validation and decode failure modes.
func TestRunSketchErrors(t *testing.T) {
	var out strings.Builder
	if err := runOut([]string{"-algorithm", "k-reduce", "-emit-sketch", "x"}, sample, &out); err == nil {
		t.Error("-emit-sketch accepted for a non-streaming extractor")
	}
	if err := runOut([]string{"-iterative", "0.5", "-merge-sketch", "x"}, sample, &out); err == nil {
		t.Error("-merge-sketch accepted with -iterative")
	}
	bad := filepath.Join(t.TempDir(), "bad.jxsk")
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runOut([]string{"-merge-sketch", bad}, "", &out); err == nil {
		t.Error("garbage sketch accepted")
	}
	if err := runOut([]string{"-merge-sketch", filepath.Join(t.TempDir(), "missing.jxsk")}, "", &out); err == nil {
		t.Error("missing sketch file accepted")
	}
}

// TestRunBoundedStream exercises the sublinear-memory flags end to end:
// a churn stream under -capacity/-window/-ring/-decay still yields a
// schema, and -stats reports the reservoir and window counters.
func TestRunBoundedStream(t *testing.T) {
	var churn strings.Builder
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&churn, "{\"k%03d\":%d}\n", i, i)
	}
	var out, errOut strings.Builder
	err := run([]string{"-jsonl", "-stats",
		"-capacity", "16", "-window", "50", "-ring", "2", "-decay", "0.5",
		"-window-drift"},
		strings.NewReader(churn.String()), &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("no schema output")
	}
	if !strings.Contains(errOut.String(), "reservoir: seen=400") {
		t.Errorf("stats missing reservoir line:\n%s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "windows closed:") {
		t.Errorf("stats missing window line:\n%s", errOut.String())
	}
}

// TestRunBoundedErrors pins the bound-flag validation.
func TestRunBoundedErrors(t *testing.T) {
	var out strings.Builder
	if err := runOut([]string{"-algorithm", "k-reduce", "-capacity", "8"}, sample, &out); err == nil {
		t.Error("-capacity accepted for a non-streaming extractor")
	}
	if err := runOut([]string{"-ring", "2"}, sample, &out); err == nil {
		t.Error("-ring accepted without -window")
	}
	if err := runOut([]string{"-window", "10", "-decay", "1.5"}, sample, &out); err == nil {
		t.Error("-decay outside (0,1) accepted")
	}
	if err := runOut([]string{"-window-drift", "-window", "10"}, sample, &out); err == nil {
		t.Error("-window-drift accepted without -ring")
	}
}
