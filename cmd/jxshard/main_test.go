package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"jxplain/internal/dataset"
)

// TestMain lets the test binary stand in for the jxshard executable: the
// run driver spawns os.Executable() for its map phase, which under `go
// test` is this binary. Worker invocations carry JXSHARD_WORKER_PROCESS
// in the environment and are dispatched straight into run().
func TestMain(m *testing.M) {
	if os.Getenv("JXSHARD_WORKER_PROCESS") != "" {
		if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
			fmt.Fprintln(os.Stderr, "jxshard:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// datasetJSONL renders a generator's records as JSONL, matching the
// record set behind testdata/golden (300 records, seed 1).
func datasetJSONL(t *testing.T, g *dataset.Generator, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, rec := range g.Generate(n, 1) {
		data, err := json.Marshal(rec.Value)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		buf.Write(data)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

func goldenSchema(t *testing.T, name string) []byte {
	t.Helper()
	want, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden", name+".schema.json"))
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestShardRunByteIdentical is the acceptance check for the scale-out
// driver: `jxshard run` over four real map worker processes must produce
// the golden single-process schema, byte for byte, on every dataset.
func TestShardRunByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes per dataset")
	}
	for _, g := range dataset.Registry() {
		input := filepath.Join(t.TempDir(), "input.jsonl")
		if err := os.WriteFile(input, datasetJSONL(t, g, 300), 0o644); err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		err := run([]string{"run", "-shards", "4", "-jsonl", "-format", "native", input},
			nil, &out, os.Stderr)
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if want := goldenSchema(t, g.Name); !bytes.Equal(out.Bytes(), want) {
			t.Errorf("%s: 4-shard schema diverges from golden\ngot:  %s\nwant: %s",
				g.Name, out.Bytes(), want)
		}
	}
}

// TestShardMapReduceGoldenUnevenShards drives the map and reduce phases
// separately: each dataset is cut into three deliberately uneven
// contiguous shards (≈1:2:3), each folded by its own map worker process,
// and the reduced schema must still match the golden byte for byte —
// shard boundaries carry no signal.
func TestShardMapReduceGoldenUnevenShards(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes per dataset")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range dataset.Registry() {
		dir := t.TempDir()
		lines := bytes.SplitAfter(datasetJSONL(t, g, 300), []byte("\n"))
		if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
			lines = lines[:len(lines)-1]
		}
		// Cut points at 1/6 and 3/6: shard sizes 50, 100, 150 of 300.
		cuts := []int{len(lines) / 6, len(lines) / 2, len(lines)}
		start := 0
		var sketches []string
		for i, end := range cuts {
			shardPath := filepath.Join(dir, fmt.Sprintf("shard%d.jsonl", i))
			sketchPath := filepath.Join(dir, fmt.Sprintf("shard%d.jxsk", i))
			if err := os.WriteFile(shardPath, bytes.Join(lines[start:end], nil), 0o644); err != nil {
				t.Fatal(err)
			}
			start = end
			cmd := exec.Command(exe, "map", "-jsonl", "-o", sketchPath, shardPath)
			cmd.Env = append(os.Environ(), "JXSHARD_WORKER_PROCESS=1")
			if out, err := cmd.CombinedOutput(); err != nil {
				t.Fatalf("%s: map worker %d: %v\n%s", g.Name, i, err, out)
			}
			sketches = append(sketches, sketchPath)
		}
		var out bytes.Buffer
		args := append([]string{"reduce", "-format", "native"}, sketches...)
		if err := run(args, nil, &out, os.Stderr); err != nil {
			t.Fatalf("%s: reduce: %v", g.Name, err)
		}
		if want := goldenSchema(t, g.Name); !bytes.Equal(out.Bytes(), want) {
			t.Errorf("%s: uneven-shard schema diverges from golden\ngot:  %s\nwant: %s",
				g.Name, out.Bytes(), want)
		}
	}
}

// TestShardRunConcatenatedJSON exercises the non-JSONL framing path and
// empty-shard tolerance: more shards than distinct record boundaries in
// one shard's slice is fine.
func TestShardRunConcatenatedJSON(t *testing.T) {
	g, ok := dataset.ByName("github")
	if !ok {
		t.Fatal("github dataset missing")
	}
	var concat bytes.Buffer
	for _, rec := range g.Generate(40, 1) {
		data, err := json.Marshal(rec.Value)
		if err != nil {
			t.Fatal(err)
		}
		concat.Write(data)
	}
	input := filepath.Join(t.TempDir(), "input.json")
	if err := os.WriteFile(input, concat.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var want bytes.Buffer
	if err := run([]string{"run", "-shards", "1", "-format", "native", input}, nil, &want, os.Stderr); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := run([]string{"run", "-shards", "8", "-format", "native", input}, nil, &got, os.Stderr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("8-shard concatenated-JSON schema diverges from 1-shard\ngot:  %s\nwant: %s",
			got.Bytes(), want.Bytes())
	}
}

// TestShardRunStdinSpool drives run with a non-seekable stdin, covering
// the spool path that sizes the byte quotas, and requires the same golden
// schema as the file-backed run.
func TestShardRunStdinSpool(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	g, ok := dataset.ByName("twitter")
	if !ok {
		t.Fatal("twitter dataset missing")
	}
	var out bytes.Buffer
	err := run([]string{"run", "-shards", "3", "-jsonl", "-format", "native"},
		bytes.NewReader(datasetJSONL(t, g, 300)), &out, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	if want := goldenSchema(t, g.Name); !bytes.Equal(out.Bytes(), want) {
		t.Errorf("stdin-fed schema diverges from golden\ngot:  %s\nwant: %s", out.Bytes(), want)
	}
}

// TestShardRunSpoolCleanup injects a failing map worker — malformed
// JSONL arriving over non-seekable stdin, so the input takes the spool
// path — and asserts the run leaves nothing behind in TMPDIR: the spool
// file and the shard scratch directory must be released on the error
// path, not only on success.
func TestShardRunSpoolCleanup(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	tmp := t.TempDir()
	t.Setenv("TMPDIR", tmp)
	bad := "{\"ok\":1}\nthis is not json\n{\"ok\":2}\n"
	var out bytes.Buffer
	err := run([]string{"run", "-shards", "2", "-jsonl", "-format", "native"},
		strings.NewReader(bad), &out, io.Discard)
	if err == nil {
		t.Fatal("run succeeded on malformed JSONL; the test needs a failing worker")
	}
	entries, readErr := os.ReadDir(tmp)
	if readErr != nil {
		t.Fatal(readErr)
	}
	for _, e := range entries {
		t.Errorf("leftover %s in TMPDIR after failed run", e.Name())
	}
}

// TestShardRunReduceWorkers pins that the parallel tree reduce leaves the
// output byte-identical to the sequential fold from the CLI surface too.
func TestShardRunReduceWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	g, _ := dataset.ByName("github")
	input := filepath.Join(t.TempDir(), "input.jsonl")
	if err := os.WriteFile(input, datasetJSONL(t, g, 300), 0o644); err != nil {
		t.Fatal(err)
	}
	var seq, par bytes.Buffer
	if err := run([]string{"run", "-shards", "8", "-reduce-workers", "1", "-jsonl", "-format", "native", input},
		nil, &seq, os.Stderr); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"run", "-shards", "8", "-reduce-workers", "4", "-jsonl", "-format", "native", input},
		nil, &par, os.Stderr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(par.Bytes(), seq.Bytes()) {
		t.Errorf("-reduce-workers 4 schema diverges from sequential reduce\ngot:  %s\nwant: %s",
			par.Bytes(), seq.Bytes())
	}
}

// TestShardRunStreamsInput is the io.ReadAll regression guard: the driver
// must hold O(record) memory, not O(corpus). It feeds a ~16 MiB file
// through run and asserts the driver process allocates well under the
// input size in total — the old slurping driver allocated at least 2×
// (one io.ReadAll copy plus the per-record slices), so the bound fails
// loudly if whole-corpus buffering ever returns.
func TestShardRunStreamsInput(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	input := filepath.Join(t.TempDir(), "big.jsonl")
	f, err := os.Create(input)
	if err != nil {
		t.Fatal(err)
	}
	line := []byte(`{"id":1,"name":"` + string(bytes.Repeat([]byte{'x'}, 200)) + `","tags":["a","b"]}` + "\n")
	const targetBytes = 16 << 20
	var size int64
	for size < targetBytes {
		n, err := f.Write(line)
		if err != nil {
			t.Fatal(err)
		}
		size += int64(n)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	var out bytes.Buffer
	if err := run([]string{"run", "-shards", "4", "-jsonl", "-format", "native", input},
		nil, &out, os.Stderr); err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	allocated := after.TotalAlloc - before.TotalAlloc
	t.Logf("driver allocated %d bytes for a %d-byte input", allocated, size)
	if limit := uint64(size) / 4; allocated > limit {
		t.Errorf("driver allocated %d bytes for a %d-byte input (limit %d); run is buffering the corpus again",
			allocated, size, limit)
	}
	if out.Len() == 0 {
		t.Error("no schema produced")
	}
}

// TestShardCLIErrors pins the user-facing failure modes.
func TestShardCLIErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"frobnicate"},
		{"map"},    // missing -o
		{"reduce"}, // no sketch files
		{"reduce", "-algorithm", "k-reduce", "x.jxsk"}, // unsupported extractor
		{"run", "-shards", "0"},
	}
	for _, args := range cases {
		if err := run(args, bytes.NewReader(nil), &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}

	// A reduce over garbage sketch bytes must surface the typed decode
	// error, not a panic.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.jxsk")
	if err := os.WriteFile(bad, []byte("not a sketch"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"reduce", bad}, nil, &bytes.Buffer{}, &bytes.Buffer{}); err == nil {
		t.Error("reduce accepted garbage sketch file")
	}
}
