// Command jxshard runs schema discovery as a scale-out map/reduce over
// the versioned sketch wire format.
//
//	jxshard map    [-jsonl] [-workers N] [-chunk N] -o out.jxsk [file]
//	jxshard reduce [algorithm flags] [-format F] sketch...
//	jxshard run    [-shards N] [-jsonl] [algorithm flags] [-format F] [file]
//
// The map phase folds one shard of the input into an accumulator and
// writes its serialized sketch — no algorithm configuration needed, since
// a sketch carries data statistics only. The reduce phase merges sketch
// files *in argument order* and runs passes ②/③ once under the supplied
// configuration. run is the single-machine driver: it splits the input
// into contiguous shards, spawns one `jxshard map` worker process per
// shard, and reduces their sketches.
//
// Shards are contiguous ranges, not round-robin deals: concatenating the
// shards reproduces the input stream, so reducing in shard order rebuilds
// the exact first-seen type order a single process would have observed and
// the discovered schema is byte-identical to a non-sharded run.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sync"

	"jxplain/internal/core"
	"jxplain/internal/ingest"
	"jxplain/internal/schema"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "jxshard:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: jxshard map|reduce|run [flags]")
	}
	switch args[0] {
	case "map":
		return runMap(args[1:], stdin)
	case "reduce":
		return runReduce(args[1:], stdout)
	case "run":
		return runRun(args[1:], stdin, stdout, stderr)
	}
	return fmt.Errorf("unknown subcommand %q (want map, reduce, or run)", args[0])
}

// algoFlags registers the algorithm-selection flags shared by reduce and
// run, returning a closure that builds the Config.
func algoFlags(fs *flag.FlagSet) func() (core.Config, error) {
	algorithm := fs.String("algorithm", "jxplain", "extractor: jxplain or bimax-naive")
	threshold := fs.Float64("threshold", 1.0,
		"key-space entropy threshold for collection detection (natural log)")
	noArrayTuples := fs.Bool("no-array-tuples", false,
		"treat every array as a collection (disable §5.4 detection)")
	noObjectColls := fs.Bool("no-object-collections", false,
		"treat every object as a tuple (disable §5.1 detection)")
	seed := fs.Int64("seed", 1, "seed for sampling and k-means")
	return func() (core.Config, error) {
		cfg := core.Default()
		cfg.Detection.Threshold = *threshold
		cfg.DetectArrayTuples = !*noArrayTuples
		cfg.DetectObjectCollections = !*noObjectColls
		cfg.Seed = *seed
		switch *algorithm {
		case "jxplain":
		case "bimax-naive":
			cfg.Partition = core.BimaxNaive
		default:
			return cfg, fmt.Errorf("unknown algorithm %q (the staged reducer supports jxplain and bimax-naive)", *algorithm)
		}
		return cfg, nil
	}
}

func openInput(fs *flag.FlagSet, stdin io.Reader) (io.Reader, func() error, error) {
	if fs.NArg() == 0 {
		return stdin, func() error { return nil }, nil
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// runMap folds one shard into an accumulator and writes its sketch. An
// empty shard is legal (uneven splits may starve a worker) and yields an
// empty sketch that merges as a no-op.
func runMap(args []string, stdin io.Reader) error {
	fs := flag.NewFlagSet("jxshard map", flag.ContinueOnError)
	out := fs.String("o", "", "output sketch file (required; - for stdout)")
	jsonl := fs.Bool("jsonl", false, "treat input as strict JSONL")
	workers := fs.Int("workers", 0, "decode workers (0 = one per core)")
	chunk := fs.Int("chunk", 0, "records per ingestion chunk (0 = default 2048)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("map: -o is required")
	}
	input, closeIn, err := openInput(fs, stdin)
	if err != nil {
		return err
	}
	defer closeIn()

	acc := core.NewAccumulator(core.Default())
	opts := ingest.Options{ChunkSize: *chunk, Workers: *workers, JSONL: *jsonl}
	if _, err := ingest.Fold(context.Background(), input, opts, acc); err != nil {
		return fmt.Errorf("map: decoding records: %w", err)
	}
	data, err := acc.Marshal()
	if err != nil {
		return fmt.Errorf("map: %w", err)
	}
	if *out == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

// runReduce merges sketch files in argument order and synthesizes the
// schema once.
func runReduce(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("jxshard reduce", flag.ContinueOnError)
	cfgOf := algoFlags(fs)
	format := fs.String("format", "pretty",
		"output: pretty (paper notation), jsonschema, or native")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := cfgOf()
	if err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("reduce: no sketch files given")
	}
	acc := core.NewAccumulator(cfg)
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if err := acc.MergeSketch(data); err != nil {
			return fmt.Errorf("reduce: %s: %w", path, err)
		}
	}
	if acc.Records() == 0 {
		return fmt.Errorf("reduce: no records in any sketch")
	}
	return printSchema(stdout, schema.Simplify(acc.Finish()), *format)
}

// runRun is the single-machine scale-out driver: contiguous split, one
// map worker process per shard, reduce in shard order.
//
//jx:pool one goroutine per map worker process, results in index-disjoint slices, joined before reduce
func runRun(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("jxshard run", flag.ContinueOnError)
	cfgOf := algoFlags(fs)
	shards := fs.Int("shards", 4, "number of map worker processes")
	jsonl := fs.Bool("jsonl", false, "treat input as strict JSONL")
	format := fs.String("format", "pretty",
		"output: pretty (paper notation), jsonschema, or native")
	workers := fs.Int("workers", 0, "decode workers per map process (0 = one per core)")
	chunk := fs.Int("chunk", 0, "records per ingestion chunk (0 = default 2048)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := cfgOf()
	if err != nil {
		return err
	}
	if *shards < 1 {
		return fmt.Errorf("run: -shards must be at least 1")
	}
	input, closeIn, err := openInput(fs, stdin)
	if err != nil {
		return err
	}
	raw, err := io.ReadAll(input)
	closeIn()
	if err != nil {
		return err
	}

	parts, err := splitShards(raw, *shards, *jsonl)
	if err != nil {
		return err
	}

	tmp, err := os.MkdirTemp("", "jxshard")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	exe, err := os.Executable()
	if err != nil {
		return err
	}
	sketches := make([]string, len(parts))
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, part := range parts {
		shardPath := filepath.Join(tmp, fmt.Sprintf("shard%d.jsonl", i))
		sketches[i] = filepath.Join(tmp, fmt.Sprintf("shard%d.jxsk", i))
		if err := os.WriteFile(shardPath, part, 0o644); err != nil {
			return err
		}
		wg.Add(1)
		go func(i int, shardPath string) {
			defer wg.Done()
			mapArgs := []string{"map", "-o", sketches[i]}
			if *jsonl {
				mapArgs = append(mapArgs, "-jsonl")
			}
			if *workers > 0 {
				mapArgs = append(mapArgs, "-workers", fmt.Sprint(*workers))
			}
			if *chunk > 0 {
				mapArgs = append(mapArgs, "-chunk", fmt.Sprint(*chunk))
			}
			mapArgs = append(mapArgs, shardPath)
			cmd := exec.Command(exe, mapArgs...)
			cmd.Stderr = stderr
			// Lets a test binary recognize it must act as jxshard.
			cmd.Env = append(os.Environ(), "JXSHARD_WORKER_PROCESS=1")
			if err := cmd.Run(); err != nil {
				errs[i] = fmt.Errorf("map worker %d: %w", i, err)
			}
		}(i, shardPath)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	acc := core.NewAccumulator(cfg)
	for i, path := range sketches {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if err := acc.MergeSketch(data); err != nil {
			return fmt.Errorf("reduce: shard %d: %w", i, err)
		}
	}
	if acc.Records() == 0 {
		return fmt.Errorf("no records in input")
	}
	return printSchema(stdout, schema.Simplify(acc.Finish()), *format)
}

// splitShards cuts the input into n contiguous shards on record
// boundaries. JSONL splits on line boundaries; concatenated JSON is
// re-framed value by value (each value lands whole in one shard, and the
// emitted shards remain valid concatenated JSON). Concatenation of the
// shards, in order, is record-for-record the original stream.
func splitShards(raw []byte, n int, jsonl bool) ([][]byte, error) {
	var records [][]byte
	if jsonl {
		for len(raw) > 0 {
			i := len(raw)
			if j := bytes.IndexByte(raw, '\n'); j >= 0 {
				i = j + 1
			}
			records = append(records, raw[:i])
			raw = raw[i:]
		}
	} else {
		dec := json.NewDecoder(bytes.NewReader(raw))
		for dec.More() {
			var v json.RawMessage
			if err := dec.Decode(&v); err != nil {
				return nil, fmt.Errorf("framing records: %w", err)
			}
			records = append(records, append([]byte(v), '\n'))
		}
	}
	parts := make([][]byte, n)
	start := 0
	for i := 0; i < n; i++ {
		end := len(records) * (i + 1) / n
		var buf []byte
		for _, rec := range records[start:end] {
			buf = append(buf, rec...)
		}
		parts[i] = buf
		start = end
	}
	return parts, nil
}

func printSchema(stdout io.Writer, s schema.Schema, format string) error {
	switch format {
	case "pretty":
		fmt.Fprintln(stdout, s.String())
	case "jsonschema":
		data, err := schema.MarshalJSONSchema(s)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(data))
	case "native":
		data, err := schema.Marshal(s)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(data))
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	return nil
}
