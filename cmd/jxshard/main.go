// Command jxshard runs schema discovery as a scale-out map/reduce over
// the versioned sketch wire format.
//
//	jxshard map    [-jsonl] [-workers N] [-chunk N] -o out.jxsk [file]
//	jxshard reduce [algorithm flags] [-reduce-workers N] [-format F] sketch...
//	jxshard run    [-shards N] [-jsonl] [-reduce-workers N] [algorithm flags] [-format F] [file]
//
// The map phase folds one shard of the input into an accumulator and
// writes its serialized sketch — no algorithm configuration needed, since
// a sketch carries data statistics only. The reduce phase merges sketch
// files *in argument order* — as a parallel tree when -reduce-workers
// allows — and runs passes ②/③ once under the supplied configuration. run
// is the single-machine driver: it streams the input into contiguous
// shards, one `jxshard map` worker process per shard, and tree-reduces
// their sketches.
//
// Shards are contiguous ranges, not round-robin deals: concatenating the
// shards reproduces the input stream, so reducing in shard order rebuilds
// the exact first-seen type order a single process would have observed and
// the discovered schema is byte-identical to a non-sharded run. The driver
// never materializes the corpus: shard boundaries are found by scanning
// record frames against byte quotas and each record is forwarded straight
// to its worker's stdin, so the driver's memory is O(record), not
// O(corpus).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"jxplain/internal/core"
	"jxplain/internal/ingest"
	"jxplain/internal/schema"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "jxshard:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: jxshard map|reduce|run [flags]")
	}
	switch args[0] {
	case "map":
		return runMap(args[1:], stdin)
	case "reduce":
		return runReduce(args[1:], stdout)
	case "run":
		return runRun(args[1:], stdin, stdout, stderr)
	}
	return fmt.Errorf("unknown subcommand %q (want map, reduce, or run)", args[0])
}

// algoFlags registers the algorithm-selection flags shared by reduce and
// run, returning a closure that builds the Config.
func algoFlags(fs *flag.FlagSet) func() (core.Config, error) {
	algorithm := fs.String("algorithm", "jxplain", "extractor: jxplain or bimax-naive")
	threshold := fs.Float64("threshold", 1.0,
		"key-space entropy threshold for collection detection (natural log)")
	noArrayTuples := fs.Bool("no-array-tuples", false,
		"treat every array as a collection (disable §5.4 detection)")
	noObjectColls := fs.Bool("no-object-collections", false,
		"treat every object as a tuple (disable §5.1 detection)")
	seed := fs.Int64("seed", 1, "seed for sampling and k-means")
	return func() (core.Config, error) {
		cfg := core.Default()
		cfg.Detection.Threshold = *threshold
		cfg.DetectArrayTuples = !*noArrayTuples
		cfg.DetectObjectCollections = !*noObjectColls
		cfg.Seed = *seed
		switch *algorithm {
		case "jxplain":
		case "bimax-naive":
			cfg.Partition = core.BimaxNaive
		default:
			return cfg, fmt.Errorf("unknown algorithm %q (the staged reducer supports jxplain and bimax-naive)", *algorithm)
		}
		return cfg, nil
	}
}

func openInput(fs *flag.FlagSet, stdin io.Reader) (io.Reader, func() error, error) {
	if fs.NArg() == 0 {
		return stdin, func() error { return nil }, nil
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// runMap folds one shard into an accumulator and writes its sketch. An
// empty shard is legal (uneven splits may starve a worker) and yields an
// empty sketch that merges as a no-op.
func runMap(args []string, stdin io.Reader) error {
	fs := flag.NewFlagSet("jxshard map", flag.ContinueOnError)
	out := fs.String("o", "", "output sketch file (required; - for stdout)")
	jsonl := fs.Bool("jsonl", false, "treat input as strict JSONL")
	workers := fs.Int("workers", 0, "decode workers (0 = one per core)")
	chunk := fs.Int("chunk", 0, "records per ingestion chunk (0 = default 2048)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" {
		return fmt.Errorf("map: -o is required")
	}
	input, closeIn, err := openInput(fs, stdin)
	if err != nil {
		return err
	}
	defer closeIn()

	acc := core.NewAccumulator(core.Default())
	opts := ingest.Options{ChunkSize: *chunk, Workers: *workers, JSONL: *jsonl}
	if _, err := ingest.Fold(context.Background(), input, opts, acc); err != nil {
		return fmt.Errorf("map: decoding records: %w", err)
	}
	data, err := acc.Marshal()
	if err != nil {
		return fmt.Errorf("map: %w", err)
	}
	if *out == "-" {
		_, err := os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(*out, data, 0o644)
}

// runReduce merges sketch files in argument order — as a parallel tree
// when -reduce-workers allows — and synthesizes the schema once.
func runReduce(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("jxshard reduce", flag.ContinueOnError)
	cfgOf := algoFlags(fs)
	format := fs.String("format", "pretty",
		"output: pretty (paper notation), jsonschema, or native")
	reduceWorkers := fs.Int("reduce-workers", 0,
		"concurrent sketch-merge workers (0 = one per core, 1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := cfgOf()
	if err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("reduce: no sketch files given")
	}
	datas := make([][]byte, fs.NArg())
	for i, path := range fs.Args() {
		if datas[i], err = os.ReadFile(path); err != nil {
			return err
		}
	}
	acc, err := reduceSketches(datas, cfg, *reduceWorkers, fs.Args())
	if err != nil {
		return err
	}
	if acc.Records() == 0 {
		return fmt.Errorf("reduce: no records in any sketch")
	}
	return printSchema(stdout, schema.Simplify(acc.Finish()), *format)
}

// reduceSketches tree-merges the sketches (byte-identical to a sequential
// fold at every worker count) and translates a failing file's index back
// into its name for the error message.
func reduceSketches(datas [][]byte, cfg core.Config, workers int, names []string) (*core.Accumulator, error) {
	acc, err := core.ReduceSketches(datas, cfg, workers)
	if err != nil {
		var merr *core.SketchMergeError
		if errors.As(err, &merr) && merr.Index < len(names) {
			return nil, fmt.Errorf("reduce: %s: %w", names[merr.Index], merr.Err)
		}
		return nil, fmt.Errorf("reduce: %w", err)
	}
	return acc, nil
}

// runRun is the single-machine scale-out driver: contiguous streamed
// split, one map worker process per shard, tree reduce in shard order.
//
// The input is never read into memory. Shard boundaries are byte quotas
// over the input size (a Stat for regular files; anything else is spooled
// to a temp file first, through a bounded copy buffer): each record is
// scanned off the stream and forwarded to the current worker's stdin, and
// the driver moves to the next worker at the first record boundary past
// the quota. Workers are started upfront, so shard i decodes while shards
// i+1.. are still being fed.
func runRun(args []string, stdin io.Reader, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("jxshard run", flag.ContinueOnError)
	cfgOf := algoFlags(fs)
	shards := fs.Int("shards", 4, "number of map worker processes")
	jsonl := fs.Bool("jsonl", false, "treat input as strict JSONL")
	format := fs.String("format", "pretty",
		"output: pretty (paper notation), jsonschema, or native")
	workers := fs.Int("workers", 0, "decode workers per map process (0 = one per core)")
	chunk := fs.Int("chunk", 0, "records per ingestion chunk (0 = default 2048)")
	reduceWorkers := fs.Int("reduce-workers", 0,
		"concurrent sketch-merge workers (0 = one per core, 1 = sequential)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg, err := cfgOf()
	if err != nil {
		return err
	}
	if *shards < 1 {
		return fmt.Errorf("run: -shards must be at least 1")
	}
	input, closeIn, err := openInput(fs, stdin)
	if err != nil {
		return err
	}
	defer closeIn()

	tmp, err := os.MkdirTemp("", "jxshard")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	size, input, cleanInput, err := sizedInput(input, tmp)
	if err != nil {
		return err
	}
	defer cleanInput()

	exe, err := os.Executable()
	if err != nil {
		return err
	}
	var mapArgs []string
	if *jsonl {
		mapArgs = append(mapArgs, "-jsonl")
	}
	if *workers > 0 {
		mapArgs = append(mapArgs, "-workers", fmt.Sprint(*workers))
	}
	if *chunk > 0 {
		mapArgs = append(mapArgs, "-chunk", fmt.Sprint(*chunk))
	}
	sketches, err := feedShards(input, size, *shards, *jsonl, tmp, exe, mapArgs, stderr)
	if err != nil {
		return err
	}

	datas := make([][]byte, len(sketches))
	for i, path := range sketches {
		if datas[i], err = os.ReadFile(path); err != nil {
			return err
		}
	}
	acc, err := reduceSketches(datas, cfg, *reduceWorkers, nil)
	if err != nil {
		return err
	}
	if acc.Records() == 0 {
		return fmt.Errorf("no records in input")
	}
	return printSchema(stdout, schema.Simplify(acc.Finish()), *format)
}

// sizedInput returns the input's byte size for quota computation, plus a
// cleanup releasing whatever the sizing allocated. A regular file answers
// with a Stat and needs no cleanup (the caller owns the handle); any
// other reader (a pipe, a terminal) is spooled into dir through io.Copy's
// bounded buffer — still O(buffer) memory — and replaced by the spool
// file, which the cleanup closes and removes. Error paths inside release
// the spool themselves, so a failed spool never outlives the call.
func sizedInput(input io.Reader, dir string) (int64, io.Reader, func(), error) {
	if f, ok := input.(*os.File); ok {
		if info, err := f.Stat(); err == nil && info.Mode().IsRegular() {
			return info.Size(), f, func() {}, nil
		}
	}
	path := filepath.Join(dir, "input.spool")
	spool, err := os.Create(path)
	if err != nil {
		return 0, nil, nil, err
	}
	cleanup := func() {
		spool.Close()
		os.Remove(path)
	}
	size, err := io.Copy(spool, input)
	if err != nil {
		cleanup()
		return 0, nil, nil, fmt.Errorf("spooling input: %w", err)
	}
	if _, err := spool.Seek(0, io.SeekStart); err != nil {
		cleanup()
		return 0, nil, nil, err
	}
	return size, spool, cleanup, nil
}

// mapWorker is one running `jxshard map` process being fed its shard over
// stdin.
type mapWorker struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
}

// feedShards starts n map workers reading stdin and writing per-shard
// sketch files into tmp, then scans the input record by record, streaming
// each record to the current worker and advancing at the first record
// boundary past the shard's byte quota (size·(i+1)/n). It waits for every
// worker and returns the sketch paths in shard order.
func feedShards(input io.Reader, size int64, n int, jsonl bool, tmp, exe string, mapArgs []string, stderr io.Writer) ([]string, error) {
	sketches := make([]string, n)
	workerz := make([]*mapWorker, n)
	for i := range workerz {
		sketches[i] = filepath.Join(tmp, fmt.Sprintf("shard%d.jxsk", i))
		args := append([]string{"map", "-o", sketches[i]}, mapArgs...)
		cmd := exec.Command(exe, args...)
		cmd.Stderr = stderr
		// Lets a test binary recognize it must act as jxshard.
		cmd.Env = append(os.Environ(), "JXSHARD_WORKER_PROCESS=1")
		w, err := cmd.StdinPipe()
		if err != nil {
			return nil, err
		}
		if err := cmd.Start(); err != nil {
			return nil, err
		}
		workerz[i] = &mapWorker{cmd: cmd, stdin: w}
	}
	// On every return path, close any unfed stdin (workers see EOF and
	// emit an empty sketch) and reap the processes.
	cur, written := 0, int64(0)
	scanErr := ingest.Records(input, ingest.Options{JSONL: jsonl}, func(rec []byte) error {
		for cur < n-1 && written >= size*int64(cur+1)/int64(n) {
			if err := workerz[cur].stdin.Close(); err != nil {
				return err
			}
			cur++
		}
		w := workerz[cur].stdin
		if _, err := w.Write(rec); err != nil {
			return fmt.Errorf("feeding shard %d: %w", cur, err)
		}
		if _, err := w.Write([]byte{'\n'}); err != nil {
			return fmt.Errorf("feeding shard %d: %w", cur, err)
		}
		written += int64(len(rec)) + 1
		return nil
	})
	var waitErr error
	for i, w := range workerz {
		w.stdin.Close() // idempotent; signals EOF to every remaining shard
		if err := w.cmd.Wait(); err != nil && waitErr == nil {
			waitErr = fmt.Errorf("map worker %d: %w", i, err)
		}
	}
	// A worker failure usually explains the feed error (a broken pipe is
	// the symptom, the worker's exit status the cause), so report it first.
	if waitErr != nil {
		return nil, waitErr
	}
	if scanErr != nil {
		return nil, scanErr
	}
	return sketches, nil
}

func printSchema(stdout io.Writer, s schema.Schema, format string) error {
	switch format {
	case "pretty":
		fmt.Fprintln(stdout, s.String())
	case "jsonschema":
		data, err := schema.MarshalJSONSchema(s)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(data))
	case "native":
		data, err := schema.Marshal(s)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, string(data))
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	return nil
}
