// Command jxgen emits one of the synthetic evaluation datasets as JSONL.
//
// Usage:
//
//	jxgen -dataset pharma -n 1000 -seed 7 > pharma.jsonl
//	jxgen -list
//
// With -labels, each line is wrapped as {"entity": ..., "record": ...} so
// downstream tools can use the ground-truth entity labels.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"jxplain/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "jxgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("jxgen", flag.ContinueOnError)
	name := fs.String("dataset", "", "dataset name (see -list)")
	n := fs.Int("n", 0, "record count (0 = the dataset's default)")
	seed := fs.Int64("seed", 1, "generation seed")
	labels := fs.Bool("labels", false, "wrap records with ground-truth entity labels")
	list := fs.Bool("list", false, "list available datasets")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, g := range append(dataset.Registry(), dataset.WideRegistry()...) {
			fmt.Fprintf(stdout, "%-14s n=%-6d entities=%-3d %s\n",
				g.Name, g.DefaultN, len(g.Entities), g.Description)
		}
		return nil
	}
	g, ok := dataset.ByName(*name)
	if !ok {
		return fmt.Errorf("unknown dataset %q (try -list)", *name)
	}
	count := *n
	if count <= 0 {
		count = g.DefaultN
	}

	w := bufio.NewWriter(stdout)
	defer w.Flush()
	enc := json.NewEncoder(w)
	for _, rec := range g.Generate(count, *seed) {
		var v any = rec.Value
		if *labels {
			v = map[string]any{"entity": rec.Entity, "record": rec.Value}
		}
		if err := enc.Encode(v); err != nil {
			return err
		}
	}
	return nil
}
