package main

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"github", "pharma", "yelp-merged"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %s", want)
		}
	}
}

func TestGenerateJSONL(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-dataset", "yelp-photos", "-n", "25", "-seed", "9"}, &out); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(out.String()))
	lines := 0
	for sc.Scan() {
		lines++
		var v map[string]any
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatalf("line %d is not JSON: %v", lines, err)
		}
		if _, ok := v["photo_id"]; !ok {
			t.Fatal("photo record missing photo_id")
		}
	}
	if lines != 25 {
		t.Errorf("got %d lines", lines)
	}
}

func TestGenerateWithLabels(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-dataset", "twitter", "-n", "30", "-labels"}, &out); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(strings.NewReader(out.String()))
	for sc.Scan() {
		var v struct {
			Entity string          `json:"entity"`
			Record json.RawMessage `json:"record"`
		}
		if err := json.Unmarshal(sc.Bytes(), &v); err != nil {
			t.Fatal(err)
		}
		if v.Entity == "" || len(v.Record) == 0 {
			t.Fatal("labeled record incomplete")
		}
	}
}

func TestGenerateDefaultN(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-dataset", "yelp-tip"}, &out); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(out.String(), "\n"); lines != 4000 {
		t.Errorf("default n: got %d lines", lines)
	}
}

func TestUnknownDataset(t *testing.T) {
	if err := run([]string{"-dataset", "bogus"}, &strings.Builder{}); err == nil {
		t.Error("unknown dataset should fail")
	}
}
