// Command jxdrift monitors a JSON record stream for structural drift
// against a baseline schema (the paper's §1 motivating scenario).
//
// Usage:
//
//	jxplain -format native baseline.jsonl > schema.json
//	jxdrift -schema schema.json -window 500 -threshold 0.01 live.jsonl
//
// Records are validated in windows; each window whose rejection rate
// crosses the threshold prints an alert naming the changed structure. The
// exit status is 1 when any alert fired.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"jxplain/internal/drift"
	"jxplain/internal/jsontype"
	"jxplain/internal/schema"
)

func main() {
	code, err := run(os.Args[1:], os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jxdrift:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, stdin io.Reader, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("jxdrift", flag.ContinueOnError)
	schemaPath := fs.String("schema", "", "baseline schema file (native encoding)")
	window := fs.Int("window", 500, "records per evaluation window")
	threshold := fs.Float64("threshold", 0.01, "rejection-rate fraction that raises an alert")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *schemaPath == "" {
		return 2, fmt.Errorf("-schema is required")
	}
	data, err := os.ReadFile(*schemaPath)
	if err != nil {
		return 2, err
	}
	baseline, err := schema.Unmarshal(data)
	if err != nil {
		return 2, fmt.Errorf("parsing schema: %w", err)
	}

	input := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return 2, err
		}
		defer f.Close()
		input = f
	}
	types, err := jsontype.DecodeAll(input)
	if err != nil {
		return 2, fmt.Errorf("decoding records: %w", err)
	}

	monitor := drift.NewMonitor(baseline, drift.Config{
		Window:          *window,
		RejectThreshold: *threshold,
	})
	for _, t := range types {
		if alert := monitor.Observe(t); alert != nil {
			fmt.Fprintln(stdout, alert)
		}
	}
	if alert := monitor.Flush(); alert != nil {
		fmt.Fprintln(stdout, alert)
	}
	seen, rejected, alerts := monitor.Totals()
	fmt.Fprintf(stdout, "observed: %d  rejected: %d  alerts: %d\n", seen, rejected, alerts)
	if alerts > 0 {
		return 1, nil
	}
	return 0, nil
}
