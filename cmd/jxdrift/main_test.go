package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jxplain/internal/jsontype"
	"jxplain/internal/merge"
	"jxplain/internal/schema"
)

func writeBaseline(t *testing.T, srcs ...string) string {
	t.Helper()
	bag := &jsontype.Bag{}
	for _, s := range srcs {
		ty, err := jsontype.FromJSON([]byte(s))
		if err != nil {
			t.Fatal(err)
		}
		bag.Add(ty)
	}
	data, err := schema.Marshal(merge.K(bag))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "schema.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCleanStream(t *testing.T) {
	path := writeBaseline(t, `{"a":1}`)
	var out strings.Builder
	code, err := run([]string{"-schema", path, "-window", "3"},
		strings.NewReader(`{"a":1}`+"\n"+`{"a":2}`+"\n"+`{"a":3}`+"\n"+`{"a":4}`), &out)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v out=%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "alerts: 0") {
		t.Errorf("out = %q", out.String())
	}
}

func TestDriftingStreamAlerts(t *testing.T) {
	path := writeBaseline(t, `{"a":1}`)
	stream := strings.Repeat(`{"a":1}`+"\n", 5) + strings.Repeat(`{"a":1,"new":true}`+"\n", 5)
	var out strings.Builder
	code, err := run([]string{"-schema", path, "-window", "10", "-threshold", "0.1"},
		strings.NewReader(stream), &out)
	if err != nil || code != 1 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	if !strings.Contains(out.String(), "add-optional") || !strings.Contains(out.String(), "new") {
		t.Errorf("alert should name the drift: %q", out.String())
	}
}

func TestFlushPartialWindow(t *testing.T) {
	path := writeBaseline(t, `{"a":1}`)
	var out strings.Builder
	code, _ := run([]string{"-schema", path, "-window", "1000", "-threshold", "0"},
		strings.NewReader(`{"zzz":1}`), &out)
	if code != 1 {
		t.Errorf("partial window with rejects should alert: %q", out.String())
	}
}

func TestErrors(t *testing.T) {
	if _, err := run(nil, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("missing -schema should fail")
	}
	if _, err := run([]string{"-schema", "/nope"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("missing file should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"node":"bogus"}`), 0o644)
	if _, err := run([]string{"-schema", bad}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("bad schema should fail")
	}
	good := writeBaseline(t, `{"a":1}`)
	if _, err := run([]string{"-schema", good}, strings.NewReader(`{broken`), &strings.Builder{}); err == nil {
		t.Error("malformed stream should fail")
	}
	if _, err := run([]string{"-schema", good, "/no/file"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("missing data file should fail")
	}
}
