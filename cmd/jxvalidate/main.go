// Command jxvalidate checks a stream of JSON records against a schema in
// the native encoding produced by `jxplain -format native`.
//
// Usage:
//
//	jxplain -format native data.jsonl > schema.json
//	jxvalidate -schema schema.json data.jsonl
//
// It prints a summary (accepted/rejected counts and recall) and, with -v,
// one line per rejected record. With -edits it additionally prints the
// greedy §7.5 upper bound on schema edits needed to accept everything.
// The exit status is 1 when any record is rejected.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"jxplain/internal/jsontype"
	"jxplain/internal/metrics"
	"jxplain/internal/schema"
)

func main() {
	code, err := run(os.Args[1:], os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "jxvalidate:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, stdin io.Reader, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("jxvalidate", flag.ContinueOnError)
	schemaPath := fs.String("schema", "", "schema file (native encoding)")
	verbose := fs.Bool("v", false, "print each rejected record's index")
	edits := fs.Bool("edits", false, "print the greedy edit bound for full recall")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *schemaPath == "" {
		return 2, fmt.Errorf("-schema is required")
	}
	data, err := os.ReadFile(*schemaPath)
	if err != nil {
		return 2, err
	}
	s, err := schema.Unmarshal(data)
	if err != nil {
		return 2, fmt.Errorf("parsing schema: %w", err)
	}

	input := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return 2, err
		}
		defer f.Close()
		input = f
	}
	types, err := jsontype.DecodeAll(input)
	if err != nil {
		return 2, fmt.Errorf("decoding records: %w", err)
	}

	rejected := 0
	for i, t := range types {
		if !s.Accepts(t) {
			rejected++
			if *verbose {
				fmt.Fprintf(stdout, "record %d rejected: %s\n", i, t)
			}
		}
	}
	recall := 1.0
	if len(types) > 0 {
		recall = float64(len(types)-rejected) / float64(len(types))
	}
	fmt.Fprintf(stdout, "records: %d  accepted: %d  rejected: %d  recall: %.5f\n",
		len(types), len(types)-rejected, rejected, recall)

	if *edits && rejected > 0 {
		n, list := metrics.EditsToFullRecall(s, types)
		fmt.Fprintf(stdout, "edits to full recall (greedy upper bound): %d\n", n)
		for _, e := range list {
			fmt.Fprintf(stdout, "  %-13s %-40s %s\n", e.Op, e.Path, e.Detail)
		}
	}
	if rejected > 0 {
		return 1, nil
	}
	return 0, nil
}
