package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"jxplain/internal/jsontype"
	"jxplain/internal/merge"
	"jxplain/internal/schema"
)

func writeSchema(t *testing.T, srcs ...string) string {
	t.Helper()
	bag := &jsontype.Bag{}
	for _, s := range srcs {
		ty, err := jsontype.FromJSON([]byte(s))
		if err != nil {
			t.Fatal(err)
		}
		bag.Add(ty)
	}
	data, err := schema.Marshal(merge.K(bag))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "schema.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestValidateAllAccepted(t *testing.T) {
	path := writeSchema(t, `{"a":1}`, `{"a":2,"b":"x"}`)
	var out strings.Builder
	code, err := run([]string{"-schema", path}, strings.NewReader(`{"a":3}`), &out)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	if !strings.Contains(out.String(), "recall: 1.00000") {
		t.Errorf("output = %q", out.String())
	}
}

func TestValidateRejections(t *testing.T) {
	path := writeSchema(t, `{"a":1}`)
	var out strings.Builder
	code, err := run([]string{"-schema", path, "-v", "-edits"},
		strings.NewReader(`{"a":1}`+"\n"+`{"a":1,"zzz":true}`), &out)
	if err != nil || code != 1 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	if !strings.Contains(out.String(), "rejected: 1") {
		t.Errorf("output = %q", out.String())
	}
	if !strings.Contains(out.String(), "record 1 rejected") {
		t.Error("verbose output missing")
	}
	if !strings.Contains(out.String(), "add-optional") {
		t.Error("edit bound output missing")
	}
}

func TestValidateErrors(t *testing.T) {
	if _, err := run(nil, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("missing -schema should fail")
	}
	if _, err := run([]string{"-schema", "/nope"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("missing schema file should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte(`{"node":"bogus"}`), 0o644)
	if _, err := run([]string{"-schema", bad}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("bad schema should fail")
	}
	good := writeSchema(t, `{"a":1}`)
	if _, err := run([]string{"-schema", good}, strings.NewReader(`{"broken`), &strings.Builder{}); err == nil {
		t.Error("malformed records should fail")
	}
	if _, err := run([]string{"-schema", good, "/no/such/file"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("missing data file should fail")
	}
}

func TestValidateFromFile(t *testing.T) {
	schemaPath := writeSchema(t, `{"a":1}`)
	dataPath := filepath.Join(t.TempDir(), "data.jsonl")
	os.WriteFile(dataPath, []byte(`{"a":9}`), 0o644)
	var out strings.Builder
	code, err := run([]string{"-schema", schemaPath, dataPath}, strings.NewReader(""), &out)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
}
