package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"jxplain/internal/lint/jxanalysis"
	"jxplain/internal/lint/unitchecker"
)

// runStructured is delegate() for the -json/-sarif modes: it points the
// per-unit checkers at a scratch directory via the JXLINT_DIAG_DIR
// protocol, lets go vet fan the tool out over the units, then merges
// the dropped findings into one document. Unit findings still stream to
// stderr as usual; the structured document is an additional artifact,
// and the exit code keeps go vet's pass/fail meaning so CI gates stay
// intact.
func runStructured(disabled, patterns []string, sarif bool, outPath string, suite []*jxanalysis.Analyzer) int {
	dir, err := os.MkdirTemp("", "jxlint-diag-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "jxlint: %v\n", err)
		return 1
	}
	defer os.RemoveAll(dir)

	code := delegate(disabled, patterns, unitchecker.DiagDirEnv+"="+dir)
	if code != 0 && code != 1 && code != 2 {
		return code
	}

	findings, err := collectFindings(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jxlint: %v\n", err)
		return 1
	}

	var doc any
	if sarif {
		doc = sarifDocument(suite, findings)
	} else {
		doc = findings
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "jxlint: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if outPath == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(outPath, data, 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "jxlint: %v\n", err)
		return 1
	}
	return code
}

// collectFindings merges the per-unit findings files. Test variants of a
// package re-analyze the same sources, so identical findings are
// deduplicated; the result is sorted the way the terminal output is.
func collectFindings(dir string) ([]unitchecker.Finding, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var all []unitchecker.Finding
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		var unit []unitchecker.Finding
		if err := json.Unmarshal(data, &unit); err != nil {
			return nil, fmt.Errorf("parsing findings %s: %w", e.Name(), err)
		}
		all = append(all, unit...)
	}
	return dedupeSort(all), nil
}

func dedupeSort(all []unitchecker.Finding) []unitchecker.Finding {
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	out := all[:0]
	for i, f := range all {
		if i > 0 {
			p := all[i-1]
			if f.Position.Filename == p.Position.Filename && f.Position.Line == p.Position.Line &&
				f.Position.Column == p.Position.Column && f.Analyzer == p.Analyzer && f.Message == p.Message {
				continue
			}
		}
		out = append(out, f)
	}
	return out
}
