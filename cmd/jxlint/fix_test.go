package main

import (
	"encoding/json"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"jxplain/internal/lint/analyzers"
	"jxplain/internal/lint/unitchecker"
)

func edit(file string, off, length int, text string) unitchecker.FindingEdit {
	return unitchecker.FindingEdit{Filename: file, Offset: off, Length: length, NewText: text}
}

func fixFinding(analyzer, msg string, edits ...unitchecker.FindingEdit) unitchecker.Finding {
	return unitchecker.Finding{
		Position: token.Position{Filename: edits[0].Filename, Line: 1},
		Analyzer: analyzer,
		Message:  msg,
		Fix:      &unitchecker.FindingFix{Message: "fix: " + msg, Edits: edits},
	}
}

func TestEditsConflict(t *testing.T) {
	cases := []struct {
		a, b unitchecker.FindingEdit
		want bool
	}{
		{edit("f", 0, 5, ""), edit("f", 5, 5, ""), false},     // adjacent half-open spans
		{edit("f", 0, 5, ""), edit("f", 4, 5, ""), true},      // overlap by one byte
		{edit("f", 10, 0, "x"), edit("f", 10, 0, "y"), true},  // two insertions at one offset
		{edit("f", 10, 0, "x"), edit("f", 11, 0, "y"), false}, // insertions at distinct offsets
		{edit("f", 10, 0, "x"), edit("f", 8, 4, ""), true},    // insertion inside a deletion
	}
	for i, c := range cases {
		if got := editsConflict(c.a, c.b); got != c.want {
			t.Errorf("case %d: editsConflict = %v, want %v", i, got, c.want)
		}
		if got := editsConflict(c.b, c.a); got != c.want {
			t.Errorf("case %d (swapped): editsConflict = %v, want %v", i, got, c.want)
		}
	}
}

// TestPlanEditsAtomicSkip pins the all-or-nothing rule: a fix whose
// second edit collides drops entirely, including its non-colliding first
// edit, and the skip is reported.
func TestPlanEditsAtomicSkip(t *testing.T) {
	findings := []unitchecker.Finding{
		fixFinding("a1", "first", edit("f.go", 10, 4, "xx")),
		fixFinding("a2", "collides", edit("f.go", 100, 0, "ok"), edit("f.go", 12, 2, "no")),
		fixFinding("a3", "clean", edit("f.go", 50, 0, "yes")),
		{Analyzer: "a4", Message: "fixless"},
	}
	edits, skipped := planEdits(findings)
	if len(skipped) != 1 || !strings.Contains(skipped[0], `"fix: collides"`) {
		t.Fatalf("skipped = %q, want one note about the colliding fix", skipped)
	}
	got := edits["f.go"]
	if len(got) != 2 {
		t.Fatalf("accepted %d edits, want 2 (the colliding fix must drop both its edits): %+v", len(got), got)
	}
	for _, e := range got {
		if e.NewText == "ok" || e.NewText == "no" {
			t.Errorf("edit %+v from the skipped fix leaked into the plan", e)
		}
	}
}

func TestApplyToBytes(t *testing.T) {
	data := []byte("line one\nline two\nline three\n")
	edits := []unitchecker.FindingEdit{
		edit("f", 0, 0, "// header\n"),
		edit("f", 14, 3, "2"), // "two" -> "2"
		edit("f", 18, 11, ""), // delete "line three\n"
	}
	got, err := applyToBytes(data, edits)
	if err != nil {
		t.Fatal(err)
	}
	want := "// header\nline one\nline 2\n"
	if string(got) != want {
		t.Errorf("applyToBytes = %q, want %q", got, want)
	}

	if _, err := applyToBytes(data, []unitchecker.FindingEdit{edit("f", 25, 10, "")}); err == nil {
		t.Error("out-of-bounds edit did not error")
	}
}

func TestRenderDiffShape(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.go")
	if err := os.WriteFile(path, []byte("a\nb\nc\nd\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	// Replace "b\nc\n" (offset 2, length 4) with "B\n": prefix "a", suffix "d".
	diff, err := renderDiff(map[string][]unitchecker.FindingEdit{
		path: {edit(path, 2, 4, "B\n")},
	})
	if err != nil {
		t.Fatal(err)
	}
	rel := sarifURI(path)
	want := "--- a/" + rel + "\n+++ b/" + rel + "\n@@ -2,2 +2,1 @@\n-b\n-c\n+B\n"
	if diff != want {
		t.Errorf("renderDiff = %q, want %q", diff, want)
	}

	// A plan whose application is a byte-level no-op renders nothing.
	diff, err = renderDiff(map[string][]unitchecker.FindingEdit{
		path: {edit(path, 2, 1, "b")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if diff != "" {
		t.Errorf("no-op plan rendered a diff: %q", diff)
	}
}

// TestSarifFixesRoundTrip proves the edits survive the SARIF encoding:
// replacements parsed back out of the serialized document apply to the
// same bytes as the original findings-protocol edits.
func TestSarifFixesRoundTrip(t *testing.T) {
	src := []byte("count := readCount(data)\nout := make([]item, count)\n")
	edits := []unitchecker.FindingEdit{
		edit("pkg/decode.go", 25, 0, "count = min(count, uint64(len(data)))\n"),
		edit("pkg/decode.go", 0, 5, "n"),
	}
	finding := fixFinding("decodebound", "unguarded count", edits...)

	doc := sarifDocument(analyzers.All(), []unitchecker.Finding{finding})
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var raw struct {
		Runs []struct {
			Results []struct {
				Fixes []struct {
					Description     struct{ Text string } `json:"description"`
					ArtifactChanges []struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Replacements []struct {
							DeletedRegion struct {
								CharOffset int `json:"charOffset"`
								CharLength int `json:"charLength"`
							} `json:"deletedRegion"`
							InsertedContent *struct {
								Text string `json:"text"`
							} `json:"insertedContent"`
						} `json:"replacements"`
					} `json:"artifactChanges"`
				} `json:"fixes"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	fixes := raw.Runs[0].Results[0].Fixes
	if len(fixes) != 1 {
		t.Fatalf("fixes = %d, want 1", len(fixes))
	}
	if fixes[0].Description.Text != finding.Fix.Message {
		t.Errorf("fix description = %q, want %q", fixes[0].Description.Text, finding.Fix.Message)
	}
	var decoded []unitchecker.FindingEdit
	for _, ch := range fixes[0].ArtifactChanges {
		if ch.ArtifactLocation.URI != "pkg/decode.go" {
			t.Errorf("artifact uri = %q, want pkg/decode.go", ch.ArtifactLocation.URI)
		}
		for _, r := range ch.Replacements {
			text := ""
			if r.InsertedContent != nil {
				text = r.InsertedContent.Text
			}
			decoded = append(decoded, edit(ch.ArtifactLocation.URI, r.DeletedRegion.CharOffset, r.DeletedRegion.CharLength, text))
		}
	}
	want, err := applyToBytes(src, edits)
	if err != nil {
		t.Fatal(err)
	}
	got, err := applyToBytes(src, decoded)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("edits decoded from SARIF apply to %q, direct edits apply to %q", got, want)
	}
}

// TestSarifRuleIndexUnderFiltering pins ruleIndex correctness when the
// suite is filtered by -<analyzer>=false: the rules array shrinks, and
// every result's index must still point at its own rule.
func TestSarifRuleIndexUnderFiltering(t *testing.T) {
	full := analyzers.All()
	sub := full[:0:0]
	for _, a := range full {
		if a.Name == "decodebound" || a.Name == "mergepure" || a.Name == "ignoreaudit" {
			sub = append(sub, a)
		}
	}
	if len(sub) != 3 {
		t.Fatalf("filtered suite has %d analyzers, want 3", len(sub))
	}
	findings := []unitchecker.Finding{
		{Position: token.Position{Filename: "a.go", Line: 1}, Analyzer: "mergepure", Message: "m"},
		{Position: token.Position{Filename: "a.go", Line: 2}, Analyzer: "decodebound", Message: "d"},
	}
	doc := sarifDocument(sub, findings)
	rules := doc.Runs[0].Tool.Driver.Rules
	if len(rules) != len(sub)+1 { // +1 for the framework pseudo-rule
		t.Errorf("rules = %d, want %d", len(rules), len(sub)+1)
	}
	for i, r := range doc.Runs[0].Results {
		if r.RuleIndex < 0 || r.RuleIndex >= len(rules) || rules[r.RuleIndex].ID != r.RuleID {
			t.Errorf("result %d: ruleIndex %d does not resolve to %q", i, r.RuleIndex, r.RuleID)
		}
	}
}

// TestFixApplyIdempotent drives the whole engine end to end through the
// vet protocol: a decodebound clamp and a mergepure tag suggestion in
// one module, -fixdiff first (non-empty, no writes), then -fix (files
// change, findings clear), then -fix again (byte-identical — the
// acceptance criterion that applying twice is a no-op).
func TestFixApplyIdempotent(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, map[string]string{
		"go.mod": modfile,
		"decode.go": `package scratch

import "encoding/binary"

// Decode sizes its output from an unclamped wire varint.
func Decode(data []byte) []uint64 {
	n, _ := binary.Uvarint(data)
	out := make([]uint64, n)
	return out
}
`,
		"pool.go": `package scratch

// Pool accumulates counts.
type Pool struct{ n int }

func (p *Pool) combineShared(other *Pool) {
	p.n += other.n
}

var _ = (&Pool{}).combineShared
`,
	})
	jx := func(args ...string) (string, int) {
		cmd := exec.Command(tool, args...)
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("running jxlint %v: %v\n%s", args, err, out)
		}
		return string(out), code
	}
	snapshot := func() map[string]string {
		files := map[string]string{}
		for _, name := range []string{"decode.go", "pool.go"} {
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			files[name] = string(data)
		}
		return files
	}

	before := snapshot()
	diffOut := filepath.Join(t.TempDir(), "fix.diff")
	out, code := jx("-fixdiff", "-o", diffOut, "./...")
	if code == 0 {
		t.Fatalf("-fixdiff exited 0 on a module with findings:\n%s", out)
	}
	diff, err := os.ReadFile(diffOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(diff), "min(n, uint64(len(data)))") || !strings.Contains(string(diff), "//jx:monoid") {
		t.Fatalf("-fixdiff diff missing the expected rewrites:\n%s", diff)
	}
	if got := snapshot(); got["decode.go"] != before["decode.go"] || got["pool.go"] != before["pool.go"] {
		t.Fatal("-fixdiff modified source files")
	}

	if out, code := jx("-fix", "./..."); code == 0 {
		t.Fatalf("first -fix run exited 0 on a module with findings:\n%s", out)
	}
	fixed := snapshot()
	if !strings.Contains(fixed["decode.go"], "n = min(n, uint64(len(data)))") {
		t.Fatalf("-fix did not insert the clamp:\n%s", fixed["decode.go"])
	}
	if !strings.Contains(fixed["pool.go"], "//jx:monoid\nfunc (p *Pool) combineShared") {
		t.Fatalf("-fix did not insert the monoid tag:\n%s", fixed["pool.go"])
	}

	if out, code := jx("-fix", "./..."); code != 0 {
		t.Fatalf("second -fix run still finds violations (fixes are not self-clearing):\n%s", out)
	}
	again := snapshot()
	for name := range fixed {
		if again[name] != fixed[name] {
			t.Errorf("%s changed on the second -fix run; applying fixes is not idempotent:\n%s", name, again[name])
		}
	}

	// The fixed tree is clean: a dry run renders an empty diff, which is
	// the CI gate's definition of "no pending fixes".
	out, code = jx("-fixdiff", "-o", diffOut, "./...")
	if code != 0 {
		t.Fatalf("-fixdiff on the fixed tree exited %d:\n%s", code, out)
	}
	if diff, err := os.ReadFile(diffOut); err != nil || len(diff) != 0 {
		t.Fatalf("fixed tree still has a pending diff (err=%v):\n%s", err, diff)
	}
}
