package main

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"jxplain/internal/lint/unitchecker"
)

// runFix is delegate() for the -fix and -fixdiff modes: run the suite
// through go vet, collect the findings, and either apply every
// non-conflicting suggested fix to the source files (-fix) or render the
// changes as a diff without touching anything (-fixdiff). The exit code
// keeps go vet's pass/fail meaning — applying fixes does not launder the
// run that needed them.
func runFix(disabled, patterns []string, apply bool, outPath string) int {
	dir, err := os.MkdirTemp("", "jxlint-diag-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "jxlint: %v\n", err)
		return 1
	}
	defer os.RemoveAll(dir)

	code := delegate(disabled, patterns, unitchecker.DiagDirEnv+"="+dir)
	if code != 0 && code != 1 && code != 2 {
		return code
	}
	findings, err := collectFindings(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jxlint: %v\n", err)
		return 1
	}
	edits, skipped := planEdits(findings)
	for _, msg := range skipped {
		fmt.Fprintln(os.Stderr, "jxlint: "+msg)
	}
	if apply {
		files, err := applyEdits(edits)
		if err != nil {
			fmt.Fprintf(os.Stderr, "jxlint: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "jxlint: applied fixes to %d file(s)\n", files)
		return code
	}
	diff, err := renderDiff(edits)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jxlint: %v\n", err)
		return 1
	}
	if outPath == "" {
		os.Stdout.WriteString(diff)
	} else if err := os.WriteFile(outPath, []byte(diff), 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "jxlint: %v\n", err)
		return 1
	}
	return code
}

// planEdits selects the edits to apply: fixes are taken whole (all edits
// or none) in the findings' deterministic order, and a fix whose edits
// would overlap an already-accepted edit is skipped with a note —
// applying both halves of a conflict would garble the file.
func planEdits(findings []unitchecker.Finding) (map[string][]unitchecker.FindingEdit, []string) {
	accepted := map[string][]unitchecker.FindingEdit{}
	var skipped []string
	for _, f := range findings {
		if f.Fix == nil || len(f.Fix.Edits) == 0 {
			continue
		}
		conflict := false
		for _, e := range f.Fix.Edits {
			for _, a := range accepted[e.Filename] {
				if editsConflict(e, a) {
					conflict = true
					break
				}
			}
			if conflict {
				break
			}
		}
		if conflict {
			skipped = append(skipped, fmt.Sprintf("%s: skipping fix %q: overlaps an already-applied fix", f.Position, f.Fix.Message))
			continue
		}
		for _, e := range f.Fix.Edits {
			accepted[e.Filename] = append(accepted[e.Filename], e)
		}
	}
	return accepted, skipped
}

// editsConflict reports whether two edits cannot both apply: overlapping
// half-open spans, or two insertions at the same offset (their order
// would be ambiguous).
func editsConflict(a, b unitchecker.FindingEdit) bool {
	aEnd, bEnd := a.Offset+a.Length, b.Offset+b.Length
	if a.Offset < bEnd && b.Offset < aEnd {
		return true
	}
	return a.Offset == b.Offset && a.Length == 0 && b.Length == 0
}

// applyEdits rewrites each file with its accepted edits (descending
// offset, so earlier offsets stay valid) and reports how many files
// changed. Edits that fall outside the file — stale offsets from a file
// modified since the analysis ran — abort with an error before anything
// is written.
func applyEdits(edits map[string][]unitchecker.FindingEdit) (int, error) {
	files := make([]string, 0, len(edits))
	for f := range edits {
		files = append(files, f)
	}
	sort.Strings(files)
	changed := 0
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			return changed, err
		}
		fixed, err := applyToBytes(data, edits[name])
		if err != nil {
			return changed, fmt.Errorf("%s: %w", name, err)
		}
		if string(fixed) == string(data) {
			continue
		}
		info, err := os.Stat(name)
		if err != nil {
			return changed, err
		}
		if err := os.WriteFile(name, fixed, info.Mode().Perm()); err != nil {
			return changed, err
		}
		changed++
	}
	return changed, nil
}

// applyToBytes applies non-overlapping edits to one file image.
func applyToBytes(data []byte, edits []unitchecker.FindingEdit) ([]byte, error) {
	sorted := make([]unitchecker.FindingEdit, len(edits))
	copy(sorted, edits)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Offset > sorted[j].Offset })
	out := append([]byte(nil), data...)
	for _, e := range sorted {
		if e.Offset < 0 || e.Offset+e.Length > len(out) {
			return nil, fmt.Errorf("fix edit at offset %d (+%d) is outside the file (%d bytes); re-run the analysis", e.Offset, e.Length, len(out))
		}
		out = append(out[:e.Offset], append([]byte(e.NewText), out[e.Offset+e.Length:]...)...)
	}
	return out, nil
}

// renderDiff renders the planned edits per file as a unified-style diff
// with one hunk per file (common prefix and suffix lines trimmed, the
// middle shown as all-minus/all-plus). The diff is a review artifact and
// a CI tripwire — an empty string means -fix would change nothing.
func renderDiff(edits map[string][]unitchecker.FindingEdit) (string, error) {
	files := make([]string, 0, len(edits))
	for f := range edits {
		files = append(files, f)
	}
	sort.Strings(files)
	var sb strings.Builder
	for _, name := range files {
		data, err := os.ReadFile(name)
		if err != nil {
			return "", err
		}
		fixed, err := applyToBytes(data, edits[name])
		if err != nil {
			return "", fmt.Errorf("%s: %w", name, err)
		}
		if string(fixed) == string(data) {
			continue
		}
		rel := sarifURI(name)
		oldLines := splitLines(string(data))
		newLines := splitLines(string(fixed))
		p := 0
		for p < len(oldLines) && p < len(newLines) && oldLines[p] == newLines[p] {
			p++
		}
		s := 0
		for s < len(oldLines)-p && s < len(newLines)-p && oldLines[len(oldLines)-1-s] == newLines[len(newLines)-1-s] {
			s++
		}
		oldMid := oldLines[p : len(oldLines)-s]
		newMid := newLines[p : len(newLines)-s]
		fmt.Fprintf(&sb, "--- a/%s\n+++ b/%s\n", rel, rel)
		fmt.Fprintf(&sb, "@@ -%d,%d +%d,%d @@\n", hunkStart(p, len(oldMid)), len(oldMid), hunkStart(p, len(newMid)), len(newMid))
		for _, l := range oldMid {
			sb.WriteString("-" + l + "\n")
		}
		for _, l := range newMid {
			sb.WriteString("+" + l + "\n")
		}
	}
	return sb.String(), nil
}

// hunkStart renders a unified-diff range start: 1-based for non-empty
// ranges, the preceding line for empty ones.
func hunkStart(prefix, count int) int {
	if count == 0 {
		return prefix
	}
	return prefix + 1
}

func splitLines(s string) []string {
	s = strings.TrimSuffix(s, "\n")
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}
