// Command jxlint runs the jxplain analyzer suite (interncheck,
// hotpathalloc, hotpathcall, detorder, mergelaw, mergepure, conccheck,
// lockcheck, errtotal, exhausttag, decodebound, ignoreaudit — see
// internal/lint). It speaks cmd/go's vet tool protocol, including the
// .vetx fact files that carry the cross-package facts (hotpathcall's
// AllocFree/ColdPath, lockcheck's Acquires/LockOrder, errtotal's
// TotalError/MayPanic, exhausttag's EnumMembers, decodebound's
// TaintedResult/TaintedParam/BoundedResult, mergepure's
// MutatesParam/AdoptsParam/Nondet/Immutable) between units, so the
// canonical invocation is
//
//	go vet -vettool=$(go env GOPATH)/bin/jxlint ./...
//
// (what `make lint` runs). Invoked with package patterns instead of a vet
// config file, it re-executes itself through go vet, so
//
//	jxlint ./...
//
// works standalone. Individual analyzers can be disabled with
// -<analyzer>=false.
//
// In package-pattern mode, -json emits the merged findings of all units
// as a JSON array and -sarif emits a SARIF 2.1.0 log for GitHub code
// scanning (-o writes either to a file instead of stdout; the terminal
// diagnostics and the exit code are unchanged). The per-unit checkers
// hand their findings to the parent through the JXLINT_DIAG_DIR
// directory protocol — see internal/lint/unitchecker.
//
// Also in package-pattern mode, the mechanical-fix engine applies the
// analyzers' suggested fixes: -fix rewrites the source files in place
// (non-overlapping fixes only; conflicts are skipped with a note), and
// -fixdiff renders the same changes as a unified-style diff without
// touching anything — an empty diff proves -fix would be a no-op, which
// is what CI's lint-fix-dryrun step asserts on a clean tree. Both keep
// go vet's exit code: applying fixes does not launder the findings.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"jxplain/internal/lint/analyzers"
	"jxplain/internal/lint/jxanalysis"
	"jxplain/internal/lint/unitchecker"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	progname := filepath.Base(os.Args[0])
	suite := analyzers.All()

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: %s [-<analyzer>=false ...] [-json|-sarif|-fix|-fixdiff [-o file]] <packages | vet.cfg>\n\nanalyzers:\n", progname)
		for _, a := range suite {
			fmt.Fprintf(fs.Output(), "  %-14s %s\n", a.Name, a.Doc)
		}
	}
	vFlag := fs.String("V", "", "print version and exit (cmd/go build ID protocol)")
	flagsFlag := fs.Bool("flags", false, "print analyzer flags in JSON (cmd/go vet protocol)")
	jsonFlag := fs.Bool("json", false, "emit the merged findings as JSON (package-pattern mode only)")
	sarifFlag := fs.Bool("sarif", false, "emit the merged findings as SARIF 2.1.0 (package-pattern mode only)")
	outFlag := fs.String("o", "", "write the -json/-sarif/-fixdiff output to this file instead of stdout")
	fixFlag := fs.Bool("fix", false, "apply the analyzers' suggested fixes to the source files (package-pattern mode only)")
	fixdiffFlag := fs.Bool("fixdiff", false, "render the suggested fixes as a diff without applying them (package-pattern mode only)")
	enabled := map[string]*bool{}
	for _, a := range suite {
		enabled[a.Name] = fs.Bool(a.Name, true, a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	if *vFlag != "" {
		// cmd/go runs `jxlint -V=full` and parses "<name> version devel ...
		// buildID=<content id>" to compute the tool's build ID.
		return printVersion(progname)
	}
	if *flagsFlag {
		return printFlags(suite)
	}

	active := make([]*jxanalysis.Analyzer, 0, len(suite))
	var disabled []string
	for _, a := range suite {
		if *enabled[a.Name] {
			active = append(active, a)
		} else {
			disabled = append(disabled, "-"+a.Name+"=false")
		}
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unitchecker.Run(rest[0], active)
	}
	if len(rest) == 0 {
		fs.Usage()
		return 1
	}
	modes := 0
	for _, on := range []bool{*jsonFlag, *sarifFlag, *fixFlag, *fixdiffFlag} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fmt.Fprintln(os.Stderr, "jxlint: -json, -sarif, -fix, and -fixdiff are mutually exclusive")
		return 1
	}
	if *fixFlag || *fixdiffFlag {
		return runFix(disabled, rest, *fixFlag, *outFlag)
	}
	if *jsonFlag || *sarifFlag {
		return runStructured(disabled, rest, *sarifFlag, *outFlag, active)
	}
	return delegate(disabled, rest)
}

// delegate re-invokes the tool through go vet so cmd/go does the package
// loading and export-data plumbing. extraEnv entries are appended to the
// child's environment (the -json/-sarif modes pass the findings
// directory through it).
func delegate(flags, patterns []string, extraEnv ...string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "jxlint: %v\n", err)
		return 1
	}
	args := append([]string{"vet", "-vettool=" + exe}, flags...)
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdin, cmd.Stdout, cmd.Stderr = os.Stdin, os.Stdout, os.Stderr
	if len(extraEnv) > 0 {
		cmd.Env = append(os.Environ(), extraEnv...)
	}
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "jxlint: running go vet: %v\n", err)
		return 1
	}
	return 0
}

func printVersion(progname string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "jxlint: %v\n", err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(os.Stderr, "jxlint: %v\n", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(os.Stderr, "jxlint: %v\n", err)
		return 1
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
	return 0
}

// printFlags describes the tool's flags in the JSON form go vet's flag
// resolution expects.
func printFlags(suite []*jxanalysis.Analyzer) int {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	for _, a := range suite {
		out = append(out, jsonFlag{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	data, err := json.MarshalIndent(out, "", "\t")
	if err != nil {
		fmt.Fprintf(os.Stderr, "jxlint: %v\n", err)
		return 1
	}
	os.Stdout.Write(append(data, '\n'))
	return 0
}
