package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles jxlint into a temp dir and returns the binary path.
func buildTool(t *testing.T) string {
	t.Helper()
	exe := filepath.Join(t.TempDir(), "jxlint")
	cmd := exec.Command("go", "build", "-o", exe, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building jxlint: %v\n%s", err, out)
	}
	return exe
}

// writeModule materializes a throwaway module for go vet to analyze.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func vet(t *testing.T, tool, dir string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	return buf.String(), err
}

const modfile = "module scratch\n\ngo 1.22\n"

func TestVettoolFlagsViolation(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, map[string]string{
		"go.mod": modfile,
		"hot.go": `package scratch

import "fmt"

//jx:hotpath
func Describe(v int) string {
	return fmt.Sprintf("%d", v)
}
`,
	})
	out, err := vet(t, tool, dir)
	if err == nil {
		t.Fatalf("go vet -vettool=jxlint succeeded on a violating package; output:\n%s", out)
	}
	if !strings.Contains(out, "hotpathalloc") || !strings.Contains(out, "references fmt") {
		t.Fatalf("diagnostic missing from output:\n%s", out)
	}
}

func TestVettoolPassesCleanPackage(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, map[string]string{
		"go.mod": modfile,
		"ok.go": `package scratch

import "fmt"

// Describe is cold; untagged functions may allocate freely.
func Describe(v int) string {
	return fmt.Sprintf("%d", v)
}
`,
	})
	out, err := vet(t, tool, dir)
	if err != nil {
		t.Fatalf("go vet -vettool=jxlint failed on a clean package: %v\n%s", err, out)
	}
}

func TestVettoolHonorsIgnoreDirective(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, map[string]string{
		"go.mod": modfile,
		"hot.go": `package scratch

//jx:hotpath
func Key(b []byte) string {
	//jx:lint-ignore hotpathalloc startup-only, measured off the hot loop
	return string(b)
}
`,
	})
	out, err := vet(t, tool, dir)
	if err != nil {
		t.Fatalf("go vet -vettool=jxlint rejected a suppressed diagnostic: %v\n%s", err, out)
	}
}

func TestVettoolAnalyzerOptOut(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, map[string]string{
		"go.mod": modfile,
		"hot.go": `package scratch

import "fmt"

//jx:hotpath
func Describe(v int) string {
	return fmt.Sprintf("%d", v)
}
`,
	})
	// hotpathcall flags the same fixture (fmt.Sprintf is not a qualified
	// callee), so both checks are opted out to isolate the flag plumbing.
	cmd := exec.Command("go", "vet", "-vettool="+tool, "-hotpathalloc=false", "-hotpathcall=false", "./...")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("-hotpathalloc=false should disable the analyzer: %v\n%s", err, out)
	}
}

// TestVettoolCrossPackageFacts drives the full vet protocol over a
// two-package module: the AllocFree fact exported by package a's unit must
// reach package b's unit through the .vetx plumbing, qualifying a.Fast
// while still flagging the untagged a.Alloc.
func TestVettoolCrossPackageFacts(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, map[string]string{
		"go.mod": modfile,
		"a/a.go": `package a

// Fast is verified allocation-free.
//
//jx:hotpath
func Fast(x int) int { return x + 1 }

// Alloc is untagged.
func Alloc(n int) []int { return make([]int, n) }
`,
		"b/b.go": `package b

import "scratch/a"

// Use relies on a.Fast's AllocFree fact crossing the unit boundary.
//
//jx:hotpath
func Use(x int) int { return a.Fast(x) }

// Bad calls an untagged dependency function.
//
//jx:hotpath
func Bad(n int) []int { return a.Alloc(n) }
`,
	})
	out, err := vet(t, tool, dir)
	if err == nil {
		t.Fatalf("go vet -vettool=jxlint missed the cross-package violation; output:\n%s", out)
	}
	if !strings.Contains(out, "hotpathcall") || !strings.Contains(out, "scratch/a.Alloc") {
		t.Fatalf("expected a hotpathcall diagnostic naming scratch/a.Alloc:\n%s", out)
	}
	if strings.Contains(out, "scratch/a.Fast") {
		t.Fatalf("a.Fast was flagged despite its AllocFree fact:\n%s", out)
	}
}

func captureStdout(t *testing.T, f func() int) (string, int) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := f()
	w.Close()
	os.Stdout = old
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(data), code
}

// TestVersionHandshake pins the -V=full output cmd/go parses to compute
// the tool's build ID; a format drift silently breaks vet caching.
func TestVersionHandshake(t *testing.T) {
	out, code := captureStdout(t, func() int { return run([]string{"-V=full"}) })
	if code != 0 {
		t.Fatalf("-V=full exited %d\n%s", code, out)
	}
	if !strings.Contains(out, " version devel ") || !strings.Contains(out, "buildID=") {
		t.Fatalf("-V=full output does not match cmd/go's expected shape: %q", out)
	}
}

// TestFlagsHandshake pins the -flags JSON go vet uses to resolve
// -<analyzer>=false on the command line.
func TestFlagsHandshake(t *testing.T) {
	out, code := captureStdout(t, func() int { return run([]string{"-flags"}) })
	if code != 0 {
		t.Fatalf("-flags exited %d\n%s", code, out)
	}
	var flags []struct {
		Name string
		Bool bool
	}
	if err := json.Unmarshal([]byte(out), &flags); err != nil {
		t.Fatalf("-flags output is not valid JSON: %v\n%s", err, out)
	}
	byName := map[string]bool{}
	for _, f := range flags {
		if !f.Bool {
			t.Errorf("flag %s is not boolean; go vet only forwards bool analyzer flags", f.Name)
		}
		byName[f.Name] = true
	}
	if len(flags) != 12 {
		t.Errorf("-flags lists %d analyzers, want 12", len(flags))
	}
	for _, want := range []string{"interncheck", "hotpathalloc", "hotpathcall", "detorder", "mergelaw", "mergepure", "conccheck", "lockcheck", "errtotal", "exhausttag", "decodebound", "ignoreaudit"} {
		if !byName[want] {
			t.Errorf("-flags output is missing analyzer %s", want)
		}
	}
}
