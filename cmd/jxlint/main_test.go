package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles jxlint into a temp dir and returns the binary path.
func buildTool(t *testing.T) string {
	t.Helper()
	exe := filepath.Join(t.TempDir(), "jxlint")
	cmd := exec.Command("go", "build", "-o", exe, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building jxlint: %v\n%s", err, out)
	}
	return exe
}

// writeModule materializes a throwaway module for go vet to analyze.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func vet(t *testing.T, tool, dir string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	return buf.String(), err
}

const modfile = "module scratch\n\ngo 1.22\n"

func TestVettoolFlagsViolation(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, map[string]string{
		"go.mod": modfile,
		"hot.go": `package scratch

import "fmt"

//jx:hotpath
func Describe(v int) string {
	return fmt.Sprintf("%d", v)
}
`,
	})
	out, err := vet(t, tool, dir)
	if err == nil {
		t.Fatalf("go vet -vettool=jxlint succeeded on a violating package; output:\n%s", out)
	}
	if !strings.Contains(out, "hotpathalloc") || !strings.Contains(out, "references fmt") {
		t.Fatalf("diagnostic missing from output:\n%s", out)
	}
}

func TestVettoolPassesCleanPackage(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, map[string]string{
		"go.mod": modfile,
		"ok.go": `package scratch

import "fmt"

// Describe is cold; untagged functions may allocate freely.
func Describe(v int) string {
	return fmt.Sprintf("%d", v)
}
`,
	})
	out, err := vet(t, tool, dir)
	if err != nil {
		t.Fatalf("go vet -vettool=jxlint failed on a clean package: %v\n%s", err, out)
	}
}

func TestVettoolHonorsIgnoreDirective(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, map[string]string{
		"go.mod": modfile,
		"hot.go": `package scratch

//jx:hotpath
func Key(b []byte) string {
	//jx:lint-ignore hotpathalloc startup-only, measured off the hot loop
	return string(b)
}
`,
	})
	out, err := vet(t, tool, dir)
	if err != nil {
		t.Fatalf("go vet -vettool=jxlint rejected a suppressed diagnostic: %v\n%s", err, out)
	}
}

func TestVettoolAnalyzerOptOut(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, map[string]string{
		"go.mod": modfile,
		"hot.go": `package scratch

import "fmt"

//jx:hotpath
func Describe(v int) string {
	return fmt.Sprintf("%d", v)
}
`,
	})
	cmd := exec.Command("go", "vet", "-vettool="+tool, "-hotpathalloc=false", "./...")
	cmd.Dir = dir
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("-hotpathalloc=false should disable the analyzer: %v\n%s", err, out)
	}
}
