package main

import (
	"os"
	"path/filepath"
	"strings"

	"jxplain/internal/lint/jxanalysis"
	"jxplain/internal/lint/unitchecker"
)

// The SARIF 2.1.0 subset jxlint emits: one run, one rule per analyzer,
// one result per finding. The shape follows the published schema
// (https://json.schemastore.org/sarif-2.1.0.json) closely enough for
// GitHub code scanning to ingest it via codeql-action/upload-sarif.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
	Fixes     []sarifFix      `json:"fixes,omitempty"`
}

// A sarifFix carries a finding's suggested fix as artifact changes.
// Replacement regions use charOffset/charLength; jxlint sources are
// ASCII-clean Go files, so byte offsets from the findings protocol map
// onto them directly and edits round-trip through the SARIF document.
type sarifFix struct {
	Description     sarifMessage          `json:"description"`
	ArtifactChanges []sarifArtifactChange `json:"artifactChanges"`
}

type sarifArtifactChange struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Replacements     []sarifReplacement    `json:"replacements"`
}

type sarifReplacement struct {
	DeletedRegion   sarifCharRegion `json:"deletedRegion"`
	InsertedContent *sarifContent   `json:"insertedContent,omitempty"`
}

type sarifCharRegion struct {
	CharOffset int `json:"charOffset"`
	CharLength int `json:"charLength,omitempty"`
}

type sarifContent struct {
	Text string `json:"text"`
}

// sarifFixes renders a finding's fix, grouping edits by file in edit
// order.
func sarifFixes(fix *unitchecker.FindingFix) []sarifFix {
	if fix == nil {
		return nil
	}
	var changes []sarifArtifactChange
	byFile := map[string]int{}
	for _, e := range fix.Edits {
		idx, ok := byFile[e.Filename]
		if !ok {
			idx = len(changes)
			byFile[e.Filename] = idx
			changes = append(changes, sarifArtifactChange{
				ArtifactLocation: sarifArtifactLocation{URI: sarifURI(e.Filename), URIBaseID: "%SRCROOT%"},
			})
		}
		r := sarifReplacement{DeletedRegion: sarifCharRegion{CharOffset: e.Offset, CharLength: e.Length}}
		if e.NewText != "" {
			r.InsertedContent = &sarifContent{Text: e.NewText}
		}
		changes[idx].Replacements = append(changes[idx].Replacements, r)
	}
	return []sarifFix{{Description: sarifMessage{Text: fix.Message}, ArtifactChanges: changes}}
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// sarifDocument builds the log for one merged run. Rules cover the whole
// active suite — including the framework pseudo-analyzer "jxlint" that
// reports malformed directives — so every result's ruleId resolves.
func sarifDocument(suite []*jxanalysis.Analyzer, findings []unitchecker.Finding) sarifLog {
	ruleIndex := map[string]int{}
	var rules []sarifRule
	addRule := func(id, doc string) {
		if _, ok := ruleIndex[id]; ok {
			return
		}
		ruleIndex[id] = len(rules)
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: doc}})
	}
	for _, a := range suite {
		addRule(a.Name, a.Doc)
	}
	addRule("jxlint", "framework diagnostics (malformed //jx: directives)")
	for _, f := range findings {
		addRule(f.Analyzer, "analyzer "+f.Analyzer)
	}

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		line := f.Position.Line
		if line < 1 {
			line = 1 // SARIF requires startLine >= 1; positionless findings pin to the top
		}
		results = append(results, sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: ruleIndex[f.Analyzer],
			Level:     "warning",
			Message:   sarifMessage{Text: f.Message},
			Fixes:     sarifFixes(f.Fix),
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       sarifURI(f.Position.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: line, StartColumn: max(f.Position.Column, 0)},
				},
			}},
		})
	}
	return sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "jxlint",
				InformationURI: "https://github.com/jxplain/jxplain",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
}

// sarifURI renders a finding path relative to the working directory when
// possible (code scanning resolves it against %SRCROOT%), always with
// forward slashes.
func sarifURI(path string) string {
	if filepath.IsAbs(path) {
		if cwd, err := os.Getwd(); err == nil {
			if rel, err := filepath.Rel(cwd, path); err == nil && !strings.HasPrefix(rel, "..") {
				path = rel
			}
		}
	}
	return filepath.ToSlash(path)
}
