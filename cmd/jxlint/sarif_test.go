package main

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"jxplain/internal/lint/analyzers"
	"jxplain/internal/lint/unitchecker"
)

// TestSarifDocumentShape pins the structural invariants GitHub code
// scanning relies on: the 2.1.0 schema/version pair, one rule per active
// analyzer plus the framework pseudo-rule, every result's ruleId
// resolving through ruleIndex, and regions with startLine >= 1 even for
// positionless findings.
func TestSarifDocumentShape(t *testing.T) {
	suite := analyzers.All()
	findings := []unitchecker.Finding{
		{Position: token.Position{Filename: "a.go", Line: 3, Column: 7}, Analyzer: "lockcheck", Message: "m1"},
		{Position: token.Position{Filename: "b.go"}, Analyzer: "someplugin", Message: "m2"},
	}
	doc := sarifDocument(suite, findings)

	if doc.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", doc.Version)
	}
	if doc.Schema == "" {
		t.Error("$schema is empty")
	}
	if len(doc.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(doc.Runs))
	}
	run := doc.Runs[0]
	if run.Tool.Driver.Name != "jxlint" {
		t.Errorf("driver name = %q, want jxlint", run.Tool.Driver.Name)
	}

	// One rule per analyzer, the framework pseudo-rule, and the unknown
	// analyzer carried by a finding.
	byID := map[string]int{}
	for i, r := range run.Tool.Driver.Rules {
		if _, dup := byID[r.ID]; dup {
			t.Errorf("duplicate rule id %q", r.ID)
		}
		byID[r.ID] = i
	}
	for _, a := range suite {
		if _, ok := byID[a.Name]; !ok {
			t.Errorf("no rule for analyzer %s", a.Name)
		}
	}
	for _, id := range []string{"jxlint", "someplugin"} {
		if _, ok := byID[id]; !ok {
			t.Errorf("no rule for %s", id)
		}
	}

	if len(run.Results) != len(findings) {
		t.Fatalf("results = %d, want %d", len(run.Results), len(findings))
	}
	for i, r := range run.Results {
		if got := byID[r.RuleID]; got != r.RuleIndex {
			t.Errorf("result %d: ruleIndex %d does not match rules[%q] = %d", i, r.RuleIndex, r.RuleID, got)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result %d: locations = %d, want 1", i, len(r.Locations))
		}
		region := r.Locations[0].PhysicalLocation.Region
		if region.StartLine < 1 {
			t.Errorf("result %d: startLine %d < 1", i, region.StartLine)
		}
	}

	// The document must serialize with the exact field spellings the
	// schema wants; spot-check the casing through a JSON round trip.
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"$schema", "version", "runs"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("serialized log is missing %q", key)
		}
	}
}

// TestDedupeSort pins the merge order (file, line, column, analyzer,
// message) and that identical findings from test-variant re-analysis
// collapse to one.
func TestDedupeSort(t *testing.T) {
	f := func(file string, line int, analyzer, msg string) unitchecker.Finding {
		return unitchecker.Finding{
			Position: token.Position{Filename: file, Line: line},
			Analyzer: analyzer,
			Message:  msg,
		}
	}
	in := []unitchecker.Finding{
		f("b.go", 1, "x", "m"),
		f("a.go", 9, "x", "m"),
		f("a.go", 2, "x", "m"),
		f("a.go", 2, "x", "m"), // duplicate of the one above
		f("a.go", 2, "a", "m"),
	}
	out := dedupeSort(in)
	if len(out) != 4 {
		t.Fatalf("dedupeSort kept %d findings, want 4", len(out))
	}
	wantOrder := []unitchecker.Finding{
		f("a.go", 2, "a", "m"),
		f("a.go", 2, "x", "m"),
		f("a.go", 9, "x", "m"),
		f("b.go", 1, "x", "m"),
	}
	for i, w := range wantOrder {
		if out[i] != w {
			t.Errorf("out[%d] = %+v, want %+v", i, out[i], w)
		}
	}
}

// TestSarifURI checks the %SRCROOT%-relative rendering: paths under the
// working directory become relative with forward slashes; paths outside
// it stay as they are.
func TestSarifURI(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if got := sarifURI(filepath.Join(cwd, "pkg", "file.go")); got != "pkg/file.go" {
		t.Errorf("sarifURI(cwd-relative) = %q, want pkg/file.go", got)
	}
	if got := sarifURI("already/relative.go"); got != "already/relative.go" {
		t.Errorf("sarifURI(relative) = %q, want unchanged", got)
	}
	outside := filepath.Join(filepath.Dir(cwd), "elsewhere", "x.go")
	if got := sarifURI(outside); got != filepath.ToSlash(outside) {
		t.Errorf("sarifURI(outside cwd) = %q, want %q", got, filepath.ToSlash(outside))
	}
}
