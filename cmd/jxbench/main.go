// Command jxbench regenerates the paper's evaluation: Tables 1–5, Figures
// 4–5, the §7.5 edit bound, and three ablations, over the synthetic
// datasets.
//
// Usage:
//
//	jxbench -table 1                 # Table 1 (recall)
//	jxbench -table 2 -scale 0.5     # Table 2 at half the default data size
//	jxbench -figure 4               # Figure 4 entropy histogram
//	jxbench -table edits            # §7.5 schema-edit bound
//	jxbench -table threshold        # threshold-sensitivity ablation
//	jxbench -table staged           # recursive vs pipeline ablation
//	jxbench -table iterative        # §4.2 sampling loop
//	jxbench -table stream -json-out results/BENCH_stream.json
//	                                # streaming vs materialized ingestion
//	jxbench -table window -json-out results/BENCH_window.json
//	                                # bounded streams: reservoir+ring+decay
//	jxbench -all                    # everything
//
// -datasets restricts to a comma-separated list; -csv switches output to
// CSV.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"jxplain/internal/experiments"
)

// result is the common surface of every experiment result.
type result interface {
	Render() string
	CSV() string
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "jxbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("jxbench", flag.ContinueOnError)
	tableF := fs.String("table", "", "table to run: 1..5, edits, threshold, staged, iterative, sampled, fd, describe, stream, hotpath, entity, shard, reduce, window")
	figureF := fs.String("figure", "", "figure to run: 4 or 5")
	all := fs.Bool("all", false, "run every table, figure and ablation")
	datasets := fs.String("datasets", "", "comma-separated dataset subset")
	trials := fs.Int("trials", 0, "trials per configuration (default 5)")
	scale := fs.Float64("scale", 1.0, "dataset size multiplier")
	seed := fs.Int64("seed", 1, "experiment seed")
	csv := fs.Bool("csv", false, "emit CSV instead of ASCII tables")
	jsonOut := fs.String("json-out", "",
		"also write results supporting JSON (e.g. -table stream) to this file")
	cpuProfile := fs.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a pprof heap profile at exit to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer func() {
			runtime.GC() // up-to-date heap statistics for the profile
			pprof.Lookup("allocs").WriteTo(f, 0)
			f.Close()
		}()
	}

	opts := experiments.Options{Trials: *trials, Scale: *scale, Seed: *seed}
	if *datasets != "" {
		for _, name := range strings.Split(*datasets, ",") {
			opts.Datasets = append(opts.Datasets, strings.TrimSpace(name))
		}
	}

	var runs []string
	switch {
	case *all:
		runs = []string{"1", "2", "3", "4", "5", "fig4", "fig5", "edits", "threshold", "staged", "iterative", "sampled", "fd", "describe", "stream"}
	case *tableF != "":
		runs = []string{*tableF}
	case *figureF != "":
		runs = []string{"fig" + *figureF}
	default:
		return fmt.Errorf("pick -table, -figure, or -all")
	}

	for _, name := range runs {
		res, err := dispatch(name, opts)
		if err != nil {
			return err
		}
		if *csv {
			fmt.Fprint(stdout, res.CSV())
		} else {
			fmt.Fprintln(stdout, res.Render())
		}
		if *jsonOut != "" {
			j, ok := res.(interface{ JSON() ([]byte, error) })
			if !ok {
				return fmt.Errorf("experiment %q has no JSON form", name)
			}
			data, err := j.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}

func dispatch(name string, opts experiments.Options) (result, error) {
	switch name {
	case "1":
		return experiments.RunTable1(opts)
	case "2":
		return experiments.RunTable2(opts)
	case "3":
		return experiments.RunTable3(opts)
	case "4":
		return experiments.RunTable4(opts)
	case "5":
		return experiments.RunTable5(opts)
	case "fig4":
		return experiments.RunFigure4(opts)
	case "fig5":
		return experiments.RunFigure5(opts)
	case "edits":
		return experiments.RunEdits(opts)
	case "threshold":
		return experiments.RunThreshold(opts)
	case "staged":
		return experiments.RunStaged(opts)
	case "iterative":
		return experiments.RunIterative(opts)
	case "sampled":
		return experiments.RunSampledDetection(opts)
	case "fd":
		return experiments.RunFD(opts)
	case "describe":
		return experiments.RunDescribe(opts)
	case "stream":
		return experiments.RunStreamBench(opts)
	case "hotpath":
		return experiments.RunHotpath(opts)
	case "entity":
		return experiments.RunEntityBench(opts)
	case "shard":
		return experiments.RunShardBench(opts)
	case "reduce":
		return experiments.RunReduceBench(opts)
	case "window":
		return experiments.RunWindowBench(opts)
	}
	return nil, fmt.Errorf("unknown experiment %q", name)
}
