package main

import (
	"strings"
	"testing"
)

func small(extra ...string) []string {
	return append([]string{"-scale", "0.05", "-trials", "1", "-datasets", "yelp-photos,yelp-tip"}, extra...)
}

func TestRunSingleTable(t *testing.T) {
	var out strings.Builder
	if err := run(small("-table", "1"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Recall") || !strings.Contains(out.String(), "yelp-photos") {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunFigure(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scale", "0.05", "-trials", "1", "-figure", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Feature-vector memory") {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunCSV(t *testing.T) {
	var out strings.Builder
	if err := run(small("-table", "4", "-csv"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "dataset,") {
		t.Errorf("CSV output = %q", out.String())
	}
}

func TestRunAblations(t *testing.T) {
	for _, name := range []string{"edits", "threshold", "staged", "iterative"} {
		var out strings.Builder
		if err := run(small("-table", name), &out); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Len() == 0 {
			t.Errorf("%s: empty output", name)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil, &strings.Builder{}); err == nil {
		t.Error("no selection should fail")
	}
	if err := run([]string{"-table", "99"}, &strings.Builder{}); err == nil {
		t.Error("unknown table should fail")
	}
	if err := run([]string{"-table", "1", "-datasets", "bogus"}, &strings.Builder{}); err == nil {
		t.Error("unknown dataset should fail")
	}
}
